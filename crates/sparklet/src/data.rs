//! Record types: the [`Element`] codec trait and the virtual-payload
//! [`Blob`].
//!
//! Shuffled data must serialize to bytes (that is what crosses the wire).
//! [`Element`] provides the codec plus a `virtual_size` so benchmark
//! workloads can represent paper-scale values (e.g. 100 KiB rows) by tiny
//! real records — the cost models charge virtual bytes; the functional path
//! encodes/decodes real bytes.

use netz::buf::{ByteReader, ByteWriter};

/// A record type that can cross the shuffle.
pub trait Element: Send + Sync + Clone + 'static {
    /// Append the encoded form.
    fn encode(&self, w: &mut ByteWriter);
    /// Decode one element (must consume exactly what `encode` wrote).
    fn decode(r: &mut ByteReader) -> Self;
    /// Bytes this element *represents* (virtual size; ≥ real encoded size
    /// only matters for cost realism, not correctness).
    fn virtual_size(&self) -> u64;
}

impl Element for u64 {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u64(*self);
    }
    fn decode(r: &mut ByteReader) -> Self {
        r.get_u64().expect("u64 element")
    }
    fn virtual_size(&self) -> u64 {
        8
    }
}

impl Element for u8 {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u8(*self);
    }
    fn decode(r: &mut ByteReader) -> Self {
        r.get_u8().expect("u8 element")
    }
    fn virtual_size(&self) -> u64 {
        1
    }
}

impl Element for u32 {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u32(*self);
    }
    fn decode(r: &mut ByteReader) -> Self {
        r.get_u32().expect("u32 element")
    }
    fn virtual_size(&self) -> u64 {
        4
    }
}

impl Element for i64 {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_i64(*self);
    }
    fn decode(r: &mut ByteReader) -> Self {
        r.get_i64().expect("i64 element")
    }
    fn virtual_size(&self) -> u64 {
        8
    }
}

impl Element for f64 {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u64(self.to_bits());
    }
    fn decode(r: &mut ByteReader) -> Self {
        f64::from_bits(r.get_u64().expect("f64 element"))
    }
    fn virtual_size(&self) -> u64 {
        8
    }
}

impl Element for String {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_string(self);
    }
    fn decode(r: &mut ByteReader) -> Self {
        r.get_string().expect("string element")
    }
    fn virtual_size(&self) -> u64 {
        4 + self.len() as u64
    }
}

impl<A: Element, B: Element> Element for (A, B) {
    fn encode(&self, w: &mut ByteWriter) {
        self.0.encode(w);
        self.1.encode(w);
    }
    fn decode(r: &mut ByteReader) -> Self {
        let a = A::decode(r);
        let b = B::decode(r);
        (a, b)
    }
    fn virtual_size(&self) -> u64 {
        self.0.virtual_size() + self.1.virtual_size()
    }
}

impl<T: Element> Element for Vec<T> {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u32(self.len() as u32);
        for x in self {
            x.encode(w);
        }
    }
    fn decode(r: &mut ByteReader) -> Self {
        let n = r.get_u32().expect("vec length") as usize;
        (0..n).map(|_| T::decode(r)).collect()
    }
    fn virtual_size(&self) -> u64 {
        4 + self.iter().map(Element::virtual_size).sum::<u64>()
    }
}

impl<T: Element> Element for Option<T> {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.encode(w);
            }
        }
    }
    fn decode(r: &mut ByteReader) -> Self {
        match r.get_u8().expect("option tag") {
            0 => None,
            _ => Some(T::decode(r)),
        }
    }
    fn virtual_size(&self) -> u64 {
        1 + self.as_ref().map_or(0, Element::virtual_size)
    }
}

/// A virtual payload: `len` bytes of notional data identified by a seed.
/// Encodes to 12 real bytes; the cost and network models see `len`.
/// This is how 448 GB shuffles fit in laptop memory (see `DESIGN.md`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Blob {
    /// Identity of the notional content (checked by functional tests).
    pub seed: u64,
    /// Virtual length in bytes.
    pub len: u32,
}

impl Blob {
    /// A blob of `len` virtual bytes with content identity `seed`.
    pub fn new(seed: u64, len: u32) -> Blob {
        Blob { seed, len }
    }
}

impl Element for Blob {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u64(self.seed);
        w.put_u32(self.len);
    }
    fn decode(r: &mut ByteReader) -> Self {
        let seed = r.get_u64().expect("blob seed");
        let len = r.get_u32().expect("blob len");
        Blob { seed, len }
    }
    fn virtual_size(&self) -> u64 {
        u64::from(self.len)
    }
}

/// Encode a batch of elements; returns (bytes, total_virtual_size).
pub fn encode_batch<T: Element>(items: &[T]) -> (bytes::Bytes, u64) {
    let mut w = ByteWriter::with_capacity(items.len() * 16 + 8);
    w.put_u32(items.len() as u32);
    let mut virt = 4u64;
    for x in items {
        x.encode(&mut w);
        virt += x.virtual_size();
    }
    (w.freeze(), virt)
}

/// Decode a batch written by [`encode_batch`]. Takes the `Bytes` handle
/// (cloned, not copied) so element decoders can slice out zero-copy views.
pub fn decode_batch<T: Element>(data: &bytes::Bytes) -> Vec<T> {
    let mut r = ByteReader::new(data.clone());
    let n = r.get_u32().expect("batch length") as usize;
    (0..n).map(|_| T::decode(&mut r)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Element + PartialEq + std::fmt::Debug>(items: Vec<T>) {
        let (bytes, virt) = encode_batch(&items);
        let back: Vec<T> = decode_batch(&bytes);
        assert_eq!(back, items);
        let expect_virt: u64 = 4 + items.iter().map(Element::virtual_size).sum::<u64>();
        assert_eq!(virt, expect_virt);
    }

    #[test]
    fn scalar_roundtrips() {
        roundtrip(vec![0u64, 1, u64::MAX]);
        roundtrip(vec![-5i64, 0, i64::MAX]);
        roundtrip(vec![0.5f64, -1.25, f64::INFINITY]);
        roundtrip(vec![3u32, 0, u32::MAX]);
    }

    #[test]
    fn composite_roundtrips() {
        roundtrip(vec![(1u64, "a".to_string()), (2, "bb".to_string())]);
        roundtrip(vec![vec![1.0f64, 2.0], vec![], vec![3.0]]);
        roundtrip(vec![Some(7u64), None, Some(0)]);
        roundtrip(vec![(5u64, Blob::new(9, 1 << 20))]);
    }

    #[test]
    fn blob_is_small_real_huge_virtual() {
        let b = Blob::new(42, 100 * 1024 * 1024);
        let (bytes, virt) = encode_batch(&[b]);
        assert!(bytes.len() < 32);
        assert_eq!(virt, 4 + 100 * 1024 * 1024);
    }

    #[test]
    fn empty_batch() {
        roundtrip(Vec::<u64>::new());
    }
}
