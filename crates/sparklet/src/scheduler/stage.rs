//! The event-driven stage engine: attempts, epochs, lineage recovery, and
//! straggler speculation.
//!
//! A stage runs as a sequence of *attempts*. Each attempt gets a fresh
//! `stage_seq` and snapshots the map-output epoch at launch; completions
//! are matched on both, so results from aborted attempts or older epochs
//! are discarded (Spark's stale-attempt/epoch check). A `FetchFailed`
//! completion ends the attempt once all its tasks have reported, after
//! which [`JobEngine::recover`] quarantines the failing executors,
//! unregisters their map outputs (bumping the epoch), broadcasts
//! `InvalidateShuffle`, recomputes the lost parents by walking the job's
//! shuffle lineage, and resubmits only the still-missing partitions.
//!
//! When speculation is enabled, the attempt's event loop wakes on a virtual
//! timer and re-launches straggler tasks on healthy executors; the first
//! finish per (stage, partition, epoch) wins and the duplicate is dropped
//! as a late completion. Everything runs on the virtual clock — the whole
//! recovery timeline is a deterministic function of the seed.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::atomic::Ordering;
use std::sync::Arc;

use simt::queue::RecvError;

use crate::aqe::{self, AdaptiveJobSpec, BucketResults, SlicePartial};
use crate::config::SpeculationConf;
use crate::rdd::{JobSpec, JobState, ShuffleDepMeta, TaskOutput, TaskRunner};
use crate::rpc::AnyMsg;

use super::speculation::{pick_speculation_target, DurationStats};
use super::{
    DagScheduler, ExecutorHandle, InvalidateShuffle, LaunchTask, SchedEvent, StageMetrics,
};

/// One `FetchFailed` task outcome collected by an attempt.
#[derive(Debug, Clone, Copy)]
struct FetchFailure {
    shuffle_id: u32,
    /// `None`: a map-output metadata lookup failed; retry without blame.
    exec_id: Option<usize>,
}

/// What the tasks of a stage compute.
enum StageTasks<'j> {
    Map(&'j Arc<dyn ShuffleDepMeta>),
    Result,
    /// A pre-built runner list (adaptive stages, whose task count comes
    /// from the reduce plan rather than the job's partition count).
    Fixed(&'j [Arc<dyn TaskRunner>]),
}

impl StageTasks<'_> {
    fn runner(&self, job: &JobSpec, part: usize) -> Arc<dyn TaskRunner> {
        match self {
            StageTasks::Map(dep) => dep.make_map_task(part),
            StageTasks::Result => job.result_tasks[part].clone(),
            StageTasks::Fixed(runners) => runners[part].clone(),
        }
    }
}

/// How the adaptive path resolved.
enum Adaptive {
    /// Planned, ran, produced every partition's result.
    Done(Vec<AnyMsg>),
    /// Planner declined (arity mismatch); take the static path.
    Declined,
    /// The job's deadline fired mid-plan; completed buckets were folded
    /// into the job state, no exact results exist.
    Expired,
}

/// Run `job` under `sched` until completion or deadline expiry; returns
/// `Some` per-partition results in partition order (`None` when the
/// deadline fired first) plus the recorded stage metrics. Completed result
/// partitions fold into `state` as they arrive, so an expired job's best
/// partial answer is already in the evaluator when this returns.
pub(super) fn run_job(
    sched: &DagScheduler,
    job: &JobSpec,
    job_id: u32,
    state: &JobState,
) -> (Option<Vec<AnyMsg>>, Vec<StageMetrics>) {
    let mut eng = JobEngine { sched, job, job_id, state, expired: false, stages: Vec::new() };
    for dep in &job.shuffle_stages {
        eng.ensure_shuffle(dep);
        if eng.expired {
            // Expired before any result partition: the evaluator has seen
            // nothing, the answer is the zero-information interval.
            return (None, eng.stages);
        }
    }
    // Map outputs are in; this is the AQE decision point. The planner may
    // decline (arity mismatch), in which case the static path below runs.
    if let Some(ad) = &job.adaptive {
        match eng.run_adaptive(ad.as_ref()) {
            Adaptive::Done(results) => return (Some(results), eng.stages),
            Adaptive::Expired => return (None, eng.stages),
            Adaptive::Declined => {}
        }
    }
    let parts: Vec<usize> = (0..job.result_tasks.len()).collect();
    let outs =
        eng.run_to_completion(format!("Job{job_id}-ResultStage"), &StageTasks::Result, parts);
    if eng.expired {
        return (None, eng.stages);
    }
    let mut results_by_part: Vec<Option<AnyMsg>> =
        (0..job.result_tasks.len()).map(|_| None).collect();
    for (part, out) in outs {
        match out {
            TaskOutput::Result(r) => results_by_part[part] = Some(r),
            _ => panic!("result stage produced a non-result output"),
        }
    }
    let results =
        results_by_part.into_iter().map(|o| o.expect("every result partition completed")).collect();
    (Some(results), eng.stages)
}

struct JobEngine<'a> {
    sched: &'a DagScheduler,
    job: &'a JobSpec,
    job_id: u32,
    /// Shared job state: evaluator folds and progress counters.
    state: &'a JobState,
    /// Set when this job's `DeadlineExpired` event is consumed; every layer
    /// above unwinds without scheduling further work.
    expired: bool,
    stages: Vec<StageMetrics>,
}

impl JobEngine<'_> {
    /// Make `dep`'s shuffle fully computed: run its map stage if this app
    /// never has, or recompute just the holes if a later failure
    /// unregistered outputs a previous job's recovery did not cover.
    fn ensure_shuffle(&mut self, dep: &Arc<dyn ShuffleDepMeta>) {
        let id = dep.shuffle_id();
        let already = self.sched.computed_shuffles.lock().contains(&id);
        self.sched.tracker.register_shuffle(id, dep.num_maps());
        if already && self.sched.tracker.is_complete(id) {
            return;
        }
        let missing = self.sched.tracker.missing_maps(id);
        self.run_map_stage(dep, missing, already);
        if !self.expired {
            self.sched.computed_shuffles.lock().insert(id);
        }
    }

    /// Compute map partitions `maps` of `dep`'s shuffle and register their
    /// statuses. Recovery recomputations run under a `-retry` suffix so
    /// metrics distinguish them from the primary stage.
    fn run_map_stage(&mut self, dep: &Arc<dyn ShuffleDepMeta>, maps: Vec<u32>, resubmit: bool) {
        if maps.is_empty() {
            return;
        }
        let suffix = if resubmit { "-retry" } else { "" };
        let name = format!("Job{}-ShuffleMapStage{suffix}", self.job_id);
        let parts: Vec<usize> = maps.iter().map(|m| *m as usize).collect();
        let outs = self.run_to_completion(name, &StageTasks::Map(dep), parts);
        for (_, out) in outs {
            match out {
                TaskOutput::Map(status) => {
                    self.sched.tracker.register_map_output(dep.shuffle_id(), status)
                }
                _ => panic!("map stage produced a non-map output"),
            }
        }
    }

    /// Run the result stage adaptively: plan the reduce side from the
    /// registered map-output sizes, execute the planned tasks (reusing the
    /// full attempt/recovery/speculation machinery), merge split buckets,
    /// and reassemble one result per original reduce partition. Returns
    /// [`Adaptive::Declined`] when the job's result arity does not match
    /// the terminal shuffle's reduce count (the action does not run
    /// directly over the shuffle read) — the caller then takes the static
    /// path.
    ///
    /// Evaluator folding happens at bucket-routing time rather than task
    /// completion: an adaptive task covers several buckets (coalesced) or a
    /// fraction of one (slice), so per-*partition* results only exist once
    /// routed. On expiry, complete buckets fold; split buckets whose merge
    /// never ran stay unseen (post-deadline work is never scheduled).
    fn run_adaptive(&mut self, ad: &dyn AdaptiveJobSpec) -> Adaptive {
        let dep = ad.dep();
        let num_reduces = dep.num_reduces();
        if num_reduces != self.job.result_tasks.len() {
            return Adaptive::Declined;
        }
        let sched = self.sched;
        let (epoch, rows) = sched.tracker.size_matrix(dep.shuffle_id());
        let row_slices: Vec<&[u64]> = rows.iter().map(|r| r.as_slice()).collect();
        let plan = aqe::plan(&row_slices, &sched.conf.aqe);
        plan.verify_partition_of_space().expect("AQE plan must partition the reduce space");
        let obs = sched.obs();
        obs.registry().counter(obs::keys::SPARK_AQE_TASKS).add(plan.tasks.len() as u64);
        obs.registry().counter(obs::keys::SPARK_AQE_SPLIT_SLICES).add(plan.slice_count() as u64);
        obs.registry()
            .counter(obs::keys::SPARK_AQE_COALESCED_TASKS)
            .add(plan.coalesced_count() as u64);
        obs.event(
            "spark.aqe.plan",
            obs::kv! {
                "shuffle" => dep.shuffle_id(),
                "epoch" => epoch,
                "tasks" => plan.tasks.len(),
                "coalesced" => plan.coalesced_count(),
                "split_buckets" => plan.split_buckets.len(),
            },
        );

        let runners: Vec<Arc<dyn TaskRunner>> =
            plan.tasks.iter().map(|t| ad.make_task(t)).collect();
        let parts: Vec<usize> = (0..runners.len()).collect();
        let outs = self.run_to_completion(
            format!("Job{}-ResultStage", self.job_id),
            &StageTasks::Fixed(&runners),
            parts,
        );

        // Route outputs: complete-bucket results land directly; slice
        // partials group per split bucket for the merge stage.
        let mut by_bucket: Vec<Option<AnyMsg>> = (0..num_reduces).map(|_| None).collect();
        let mut partials: BTreeMap<u32, Vec<(u32, AnyMsg)>> = BTreeMap::new();
        for (_, out) in outs {
            let TaskOutput::Result(r) = out else {
                panic!("adaptive result stage produced a non-result output")
            };
            match r.downcast::<BucketResults>() {
                Ok(b) => {
                    for (bucket, res) in &b.0 {
                        by_bucket[*bucket as usize] = Some(res.clone());
                    }
                }
                Err(r) => {
                    let p = r.downcast::<SlicePartial>().expect("bucket results or slice partial");
                    partials.entry(p.bucket).or_default().push((p.map_lo, p.data.clone()));
                }
            }
        }
        if self.expired {
            self.fold_buckets(&by_bucket);
            return Adaptive::Expired;
        }
        if !partials.is_empty() {
            let merges: Vec<Arc<dyn TaskRunner>> = partials
                .into_iter()
                .map(|(bucket, mut ps)| {
                    ps.sort_by_key(|(map_lo, _)| *map_lo);
                    ad.make_merge_task(bucket, ps.into_iter().map(|(_, d)| d).collect())
                })
                .collect();
            let parts: Vec<usize> = (0..merges.len()).collect();
            // Named to share no fragment with the main stages, so metric
            // lookups by "ResultStage"/"ShuffleMapStage" stay unambiguous.
            let outs = self.run_to_completion(
                format!("Job{}-AqeMergeStage", self.job_id),
                &StageTasks::Fixed(&merges),
                parts,
            );
            for (_, out) in outs {
                let TaskOutput::Result(r) = out else {
                    panic!("AQE merge stage produced a non-result output")
                };
                let b = r.downcast::<BucketResults>().expect("merge returns bucket results");
                for (bucket, res) in &b.0 {
                    by_bucket[*bucket as usize] = Some(res.clone());
                }
            }
            if self.expired {
                self.fold_buckets(&by_bucket);
                return Adaptive::Expired;
            }
        }
        self.fold_buckets(&by_bucket);

        // Recovery mid-stage may have recomputed map outputs under a bumped
        // epoch; recomputation is deterministic, so a replan over the
        // current statuses must reproduce the plan the stage ran under —
        // the invariant that lets pre- and post-recovery task outputs mix.
        let (_, rows_now) = sched.tracker.size_matrix(dep.shuffle_id());
        let now_slices: Vec<&[u64]> = rows_now.iter().map(|r| r.as_slice()).collect();
        let replan = aqe::plan(&now_slices, &sched.conf.aqe);
        assert_eq!(replan, plan, "replan after recovery diverged from the executed plan");

        Adaptive::Done(
            by_bucket
                .into_iter()
                .map(|o| o.expect("every reduce bucket produced a result"))
                .collect(),
        )
    }

    /// Fold every routed bucket result into the job's evaluator (ascending
    /// bucket order — deterministic; the adaptive path has no meaningful
    /// per-partition completion order once tasks span buckets).
    fn fold_buckets(&self, by_bucket: &[Option<AnyMsg>]) {
        let obs = self.sched.obs();
        for (bucket, res) in by_bucket.iter().enumerate() {
            if let Some(r) = res {
                self.state.observe(bucket, r, &obs);
            }
        }
    }

    /// Drive one stage through as many attempts as it takes. Successful
    /// outputs accumulate across attempts; `FetchFailed` partitions (and map
    /// outputs stranded on an executor quarantined mid-recovery) are
    /// resubmitted until every partition has a good output.
    fn run_to_completion(
        &mut self,
        name: String,
        kind: &StageTasks,
        parts: Vec<usize>,
    ) -> Vec<(usize, TaskOutput)> {
        let all_parts = parts.clone();
        let mut needed = parts;
        let mut collected: Vec<(usize, TaskOutput)> = Vec::new();
        let mut attempt = 0u32;
        loop {
            let (sm, done, failures) = self.run_attempt(&name, kind, &needed, attempt);
            self.stages.push(sm);
            collected.extend(done);
            // Deadline expiry aborts mid-attempt: hand back whatever
            // completed — no recovery, no resubmission, no further stages.
            // Lost partitions (including a quarantined executor's) simply
            // stay unseen by the evaluator.
            if self.expired || failures.is_empty() {
                collected.sort_by_key(|(p, _)| *p);
                return collected;
            }
            attempt += 1;
            let max = self.sched.conf.max_stage_attempts;
            assert!(
                attempt < max,
                "stage {name} failed after {attempt} attempts (max_stage_attempts = {max})"
            );
            self.recover(&name, &failures);
            // Map outputs computed on a now-quarantined executor point at
            // lost blocks; drop them so those partitions rerun too.
            let quarantined = self.sched.quarantined.lock().clone();
            collected.retain(|(_, out)| match out {
                TaskOutput::Map(st) => !quarantined.contains(&st.exec_id),
                _ => true,
            });
            let have: BTreeSet<usize> = collected.iter().map(|(p, _)| *p).collect();
            needed = all_parts.iter().copied().filter(|p| !have.contains(p)).collect();
        }
    }

    /// React to an attempt's fetch failures: quarantine the blamed
    /// executors, unregister their map outputs (bumping the epoch),
    /// broadcast the invalidation, and recompute lost parents by lineage.
    /// Lost shuffles outside this job's lineage heal lazily — the next job
    /// reading them finds the holes in [`JobEngine::ensure_shuffle`].
    fn recover(&mut self, stage: &str, failures: &[FetchFailure]) {
        let sched = self.sched;
        let obs = sched.obs();
        let failed_execs: BTreeSet<usize> = failures.iter().filter_map(|f| f.exec_id).collect();
        let failed_shuffles: BTreeSet<u32> = failures.iter().map(|f| f.shuffle_id).collect();
        {
            let mut q = sched.quarantined.lock();
            for e in &failed_execs {
                q.insert(*e);
            }
        }
        let mut lost: Vec<(u32, Vec<u32>)> = Vec::new();
        for e in &failed_execs {
            lost.extend(sched.tracker.remove_executor(*e));
        }
        obs.registry().counter(obs::keys::SPARK_STAGE_RESUBMITS).inc();
        obs.event(
            "spark.stage.resubmit",
            obs::kv! {
                "stage" => stage,
                "failed_parts" => failures.len(),
                "failed_execs" => failed_execs.len(),
            },
        );
        if failed_execs.is_empty() {
            // Pure metadata failures: locations did not change, just retry.
            return;
        }
        let epoch = sched.tracker.epoch();
        let touched: BTreeSet<u32> =
            failed_shuffles.iter().copied().chain(lost.iter().map(|(s, _)| *s)).collect();
        for shuffle_id in &touched {
            for e in sched.executors() {
                let _ = e.rpc.send(InvalidateShuffle { shuffle_id: *shuffle_id, epoch });
            }
        }
        for (shuffle_id, maps) in lost {
            if let Some(dep) = self.job.shuffle_stages.iter().find(|d| d.shuffle_id() == shuffle_id)
            {
                let dep = dep.clone();
                self.run_map_stage(&dep, maps, true);
            }
        }
    }

    /// Run one attempt of a stage over `parts`: dispatch, then consume
    /// scheduler events until every partition reported exactly once. With
    /// speculation enabled the loop also wakes on a virtual interval to
    /// re-launch stragglers. Returns the attempt's metrics, its successful
    /// outputs, and any fetch failures.
    fn run_attempt(
        &mut self,
        name: &str,
        kind: &StageTasks,
        parts: &[usize],
        attempt: u32,
    ) -> (StageMetrics, Vec<(usize, TaskOutput)>, Vec<FetchFailure>) {
        let sched = self.sched;
        let obs = sched.obs();
        let _span = obs.is_traced().then(|| {
            obs.span(
                "spark.stage",
                obs::kv! {"name" => name, "tasks" => parts.len(), "attempt" => attempt},
            )
        });
        let stage_seq = sched.next_stage_seq.fetch_add(1, Ordering::Relaxed);
        let epoch = sched.tracker.epoch();
        let quarantined = sched.quarantined.lock().clone();
        let execs: Vec<ExecutorHandle> =
            sched.executors().into_iter().filter(|e| !quarantined.contains(&e.exec_id)).collect();
        assert!(!execs.is_empty(), "no healthy executors registered");
        let start_ns = simt::now();

        let mut att = Attempt::new(execs, stage_seq, attempt, epoch, start_ns);
        for &part in parts {
            att.add_task(part, kind.runner(self.job, part));
        }
        att.dispatch_all();

        let spec = sched.conf.speculation;
        let n = parts.len();
        let mut done = 0usize;
        let mut stats = DurationStats::default();
        let mut outputs: Vec<(usize, TaskOutput)> = Vec::with_capacity(n);
        let mut failures: Vec<FetchFailure> = Vec::new();
        let mut stage_snapshot = obs::MetricsSnapshot::default();
        let mut next_tick = start_ns + spec.interval_ns;

        while done < n {
            let event = if spec.enabled {
                match sched.events.recv_deadline(next_tick) {
                    Ok(ev) => Some(ev),
                    Err(RecvError::Timeout) => None,
                    Err(RecvError::Closed) => panic!("scheduler event queue closed"),
                }
            } else {
                Some(sched.events.recv().expect("scheduler event queue open"))
            };
            let Some(event) = event else {
                let now = simt::now();
                att.speculate(&spec, &stats, now, &obs);
                next_tick = now.max(next_tick) + spec.interval_ns;
                continue;
            };
            match event {
                SchedEvent::ExecutorRegistered => {}
                SchedEvent::DeadlineExpired { job_id } => {
                    // Stale deadline of an earlier job: a cancelled timer
                    // never posts, but a timer that fired just as its job
                    // completed can leave an event for the next job's loop.
                    if job_id != self.job_id {
                        continue;
                    }
                    self.state.mark_expired();
                    self.expired = true;
                    obs.registry().counter(obs::keys::SPARK_PARTIAL_DEADLINES_FIRED).inc();
                    obs.event(
                        "spark.job.deadline",
                        obs::kv! {
                            "job_id" => job_id,
                            "stage" => name,
                            "stage_done" => done,
                            "stage_tasks" => n,
                        },
                    );
                    // Abort the attempt: in-flight tasks keep running on
                    // the executors, but their completions carry this
                    // attempt's stage_seq and are dropped as stale by
                    // whatever loop drains them next.
                    break;
                }
                SchedEvent::TaskFinished {
                    stage_seq: s,
                    part,
                    exec_id,
                    epoch: e,
                    output,
                    metrics,
                } => {
                    // Dedup key (stage, partition, epoch): drop completions
                    // of aborted attempts and of launches that predate the
                    // current map-output epoch.
                    if s != stage_seq || e != epoch {
                        continue;
                    }
                    let Some(slot) = att.slot_of(exec_id) else { continue };
                    att.release(slot);
                    let ti = att.task_index(part);
                    if att.tasks[ti].done {
                        continue; // a duplicate copy lost the first-finish race
                    }
                    att.tasks[ti].done = true;
                    done += 1;
                    stats.record(metrics.counter(obs::keys::TASK_RUN_NS));
                    stage_snapshot.merge(&metrics);
                    match output {
                        TaskOutput::FetchFailed { shuffle_id, exec_id, map_id: _ } => {
                            failures.push(FetchFailure { shuffle_id, exec_id });
                        }
                        other => {
                            // The fold seam: result partitions stream into
                            // the job's evaluator in completion order.
                            // (Adaptive stages are `Fixed` and fold at
                            // bucket routing instead — task ≠ partition.)
                            if matches!(kind, StageTasks::Result) {
                                if let TaskOutput::Result(r) = &other {
                                    self.state.observe(part, r, &obs);
                                }
                            }
                            outputs.push((part, other));
                        }
                    }
                }
            }
        }
        (
            StageMetrics {
                name: name.to_string(),
                attempt,
                start_ns,
                end_ns: simt::now(),
                tasks: n,
                metrics: stage_snapshot,
            },
            outputs,
            failures,
        )
    }
}

/// One launch of one task copy.
struct Launch {
    slot: usize,
    at_ns: u64,
}

/// Per-partition state within an attempt.
struct TaskState {
    part: usize,
    runner: Arc<dyn TaskRunner>,
    /// Home executor slot under modulo placement.
    home: usize,
    launches: Vec<Launch>,
    done: bool,
}

/// Slot accounting and task dispatch for one stage attempt.
struct Attempt {
    execs: Vec<ExecutorHandle>,
    stage_seq: u64,
    attempt: u32,
    epoch: u64,
    start_ns: u64,
    free: Vec<u32>,
    queues: Vec<VecDeque<usize>>,
    tasks: Vec<TaskState>,
    by_part: BTreeMap<usize, usize>,
}

impl Attempt {
    fn new(
        execs: Vec<ExecutorHandle>,
        stage_seq: u64,
        attempt: u32,
        epoch: u64,
        start_ns: u64,
    ) -> Self {
        let n_exec = execs.len();
        let free = execs.iter().map(|e| e.cores).collect();
        Attempt {
            execs,
            stage_seq,
            attempt,
            epoch,
            start_ns,
            free,
            queues: (0..n_exec).map(|_| VecDeque::new()).collect(),
            tasks: Vec::new(),
            by_part: BTreeMap::new(),
        }
    }

    /// Queue `part` on its modulo-placement home executor.
    fn add_task(&mut self, part: usize, runner: Arc<dyn TaskRunner>) {
        let home = part % self.execs.len();
        let ti = self.tasks.len();
        self.tasks.push(TaskState { part, runner, home, launches: Vec::new(), done: false });
        self.by_part.insert(part, ti);
        self.queues[home].push_back(ti);
    }

    fn task_index(&self, part: usize) -> usize {
        *self.by_part.get(&part).expect("completion for a task of this attempt")
    }

    fn slot_of(&self, exec_id: usize) -> Option<usize> {
        self.execs.iter().position(|e| e.exec_id == exec_id)
    }

    /// Send one copy of task `ti` to executor slot `slot`. A crashed node
    /// swallows the message silently; the speculation pass (or the next
    /// attempt) covers the lost launch.
    fn launch(&mut self, ti: usize, slot: usize, speculative: bool) {
        self.free[slot] -= 1;
        self.tasks[ti].launches.push(Launch { slot, at_ns: simt::now() });
        let _ = self.execs[slot].rpc.send(LaunchTask {
            stage_seq: self.stage_seq,
            part: self.tasks[ti].part,
            attempt: self.attempt,
            epoch: self.epoch,
            speculative,
            runner: self.tasks[ti].runner.clone(),
        });
    }

    fn dispatch(&mut self, slot: usize) {
        while self.free[slot] > 0 {
            let Some(ti) = self.queues[slot].pop_front() else { break };
            self.launch(ti, slot, false);
        }
    }

    fn dispatch_all(&mut self) {
        for slot in 0..self.execs.len() {
            self.dispatch(slot);
        }
    }

    /// A completion (or duplicate) from `slot` frees one core there.
    fn release(&mut self, slot: usize) {
        self.free[slot] += 1;
        self.dispatch(slot);
    }

    /// One speculation pass: for every unfinished task whose latest launch
    /// has been running past the median-based threshold, launch one more
    /// copy on the executor with the most free slots that has not run it
    /// yet (ties break to the lowest slot — deterministic). Tasks still
    /// queued behind a stalled executor are stolen to an idle one instead
    /// of duplicated.
    fn speculate(&mut self, conf: &SpeculationConf, stats: &DurationStats, now: u64, o: &obs::Obs) {
        let Some(threshold) = stats.threshold(conf, self.tasks.len()) else {
            return;
        };
        for ti in 0..self.tasks.len() {
            if self.tasks[ti].done {
                continue;
            }
            if self.tasks[ti].launches.is_empty() {
                // Queued on an executor that has not freed a slot all this
                // time (e.g. crashed with tasks in flight): steal, don't
                // duplicate.
                if now.saturating_sub(self.start_ns) <= threshold {
                    continue;
                }
                let exclude = BTreeSet::from([self.tasks[ti].home]);
                let Some(target) = pick_speculation_target(&self.free, &exclude) else {
                    continue;
                };
                let home = self.tasks[ti].home;
                if let Some(pos) = self.queues[home].iter().position(|&x| x == ti) {
                    self.queues[home].remove(pos);
                }
                self.launch(ti, target, false);
                continue;
            }
            // One extra copy per crossing of the threshold by the *latest*
            // launch: a copy that itself stalls (sent into a crash window)
            // can be covered again, bounded by one copy per executor.
            if self.tasks[ti].launches.len() >= self.execs.len() {
                continue;
            }
            let last = self.tasks[ti].launches.last().expect("nonempty launches");
            if now.saturating_sub(last.at_ns) <= threshold {
                continue;
            }
            let ran_on: BTreeSet<usize> = self.tasks[ti].launches.iter().map(|l| l.slot).collect();
            let Some(target) = pick_speculation_target(&self.free, &ran_on) else {
                continue;
            };
            o.registry().counter(obs::keys::SPARK_SPECULATIVE_TASKS).inc();
            o.event(
                "spark.task.speculative",
                obs::kv! {
                    "part" => self.tasks[ti].part,
                    "from" => self.execs[last.slot].exec_id,
                    "to" => self.execs[target].exec_id,
                },
            );
            self.launch(ti, target, true);
        }
    }
}
