//! Straggler-speculation policy: pure, unit-testable decision functions.
//!
//! The stage engine feeds finished-task durations (the `task.run_ns`
//! counter of each completion's metrics snapshot) into [`DurationStats`];
//! once a configurable quantile of the stage has finished, the median drives
//! a `multiplier × median` threshold (floored at `min_runtime_ns`) and any
//! task running longer gets a duplicate on another executor. All choices
//! are deterministic: sorted inserts, integer medians, lowest-slot
//! tie-breaks.

use std::collections::BTreeSet;

use crate::config::SpeculationConf;

/// Sorted multiset of finished-task durations for one stage attempt.
#[derive(Default)]
pub struct DurationStats {
    sorted: Vec<u64>,
}

impl DurationStats {
    /// Record one finished task's run time.
    pub fn record(&mut self, run_ns: u64) {
        let pos = self.sorted.partition_point(|&x| x <= run_ns);
        self.sorted.insert(pos, run_ns);
    }

    /// Finished-task count.
    pub fn count(&self) -> usize {
        self.sorted.len()
    }

    /// Upper median of the recorded durations (deterministic for even
    /// counts), `None` before any task finished.
    pub fn median(&self) -> Option<u64> {
        if self.sorted.is_empty() {
            return None;
        }
        Some(self.sorted[self.sorted.len() / 2])
    }

    /// The speculation threshold, once enough of the stage has finished:
    /// `max(multiplier × median, min_runtime_ns)`. `None` while fewer than
    /// `quantile × total_tasks` completions have been recorded — an early
    /// median over one or two fast tasks would speculate half the stage.
    pub fn threshold(&self, conf: &SpeculationConf, total_tasks: usize) -> Option<u64> {
        if self.count() < quantile_need(conf.quantile, total_tasks) {
            return None;
        }
        let median = self.median()?;
        Some(((conf.multiplier * median as f64) as u64).max(conf.min_runtime_ns))
    }
}

/// Completions required before the median is trusted: `ceil(quantile ×
/// total)`, at least 1.
pub fn quantile_need(quantile: f64, total: usize) -> usize {
    ((quantile * total as f64).ceil() as usize).max(1)
}

/// Deterministic placement for a speculative copy: the executor slot with
/// the most free cores among those not in `exclude` (slots that already ran
/// a copy of the task), ties broken toward the lowest slot index. `None`
/// when no candidate has a free core — speculation never overcommits.
pub fn pick_speculation_target(free: &[u32], exclude: &BTreeSet<usize>) -> Option<usize> {
    let mut best: Option<usize> = None;
    for (slot, &f) in free.iter().enumerate() {
        if f == 0 || exclude.contains(&slot) {
            continue;
        }
        match best {
            Some(b) if free[b] >= f => {}
            _ => best = Some(slot),
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conf(multiplier: f64, quantile: f64, min_runtime_ns: u64) -> SpeculationConf {
        SpeculationConf { enabled: true, interval_ns: 1, multiplier, quantile, min_runtime_ns }
    }

    #[test]
    fn median_is_upper_for_even_counts() {
        let mut s = DurationStats::default();
        for d in [40, 10, 30, 20] {
            s.record(d);
        }
        assert_eq!(s.median(), Some(30));
        s.record(50);
        assert_eq!(s.median(), Some(30));
    }

    #[test]
    fn threshold_waits_for_the_quantile() {
        let c = conf(1.5, 0.5, 0);
        let mut s = DurationStats::default();
        s.record(100);
        s.record(100);
        assert_eq!(s.threshold(&c, 6), None, "2 of 6 < ceil(0.5*6)");
        s.record(100);
        assert_eq!(s.threshold(&c, 6), Some(150));
    }

    #[test]
    fn threshold_floors_at_min_runtime() {
        let c = conf(2.0, 0.5, 1_000_000);
        let mut s = DurationStats::default();
        s.record(10);
        assert_eq!(s.threshold(&c, 1), Some(1_000_000));
    }

    #[test]
    fn quantile_need_is_ceil_and_at_least_one() {
        assert_eq!(quantile_need(0.5, 9), 5);
        assert_eq!(quantile_need(0.75, 4), 3);
        assert_eq!(quantile_need(0.0, 10), 1);
        assert_eq!(quantile_need(0.5, 1), 1);
    }

    #[test]
    fn target_prefers_most_free_cores_then_lowest_slot() {
        let none = BTreeSet::new();
        assert_eq!(pick_speculation_target(&[1, 3, 3], &none), Some(1));
        assert_eq!(pick_speculation_target(&[0, 0, 2], &none), Some(2));
        assert_eq!(pick_speculation_target(&[0, 0, 0], &none), None);
    }

    #[test]
    fn target_excludes_slots_that_ran_the_task() {
        let exclude = BTreeSet::from([1]);
        assert_eq!(pick_speculation_target(&[1, 3, 2], &exclude), Some(2));
        assert_eq!(pick_speculation_target(&[0, 3, 0], &exclude), None);
    }
}
