//! The DAG scheduler and `SparkContext`.
//!
//! Jobs decompose into `ShuffleMapStage`s (one per uncomputed shuffle
//! dependency, parents first) and a final `ResultStage` — the exact stage
//! vocabulary of the paper's Fig. 10/11 breakdowns. Stage timings and
//! shuffle metrics are recorded per job for the benchmark harnesses.
//!
//! Stages run on an event-driven state machine ([`stage`]): each stage is a
//! sequence of *attempts*, a `FetchFailed` completion resubmits the missing
//! partitions against a freshly bumped map-output epoch after recomputing
//! lost parents by lineage, and an optional speculation tick re-launches
//! straggler tasks on healthy executors ([`speculation`]).
//!
//! Task placement is strict modulo (`partition % executors`): deterministic
//! and cache-friendly (a cached partition is always recomputed on the
//! executor that cached it), standing in for Spark's locality preferences.

pub mod speculation;
mod stage;

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, Weak};

use parking_lot::Mutex;
use simt::queue::Queue;

use crate::config::SparkConf;
use crate::data::Element;
use crate::rdd::ops::{GenerateRdd, ParallelizeRdd};
use crate::rdd::{
    AppCore, JobHandle, JobOptions, JobRunner, JobSpec, JobState, Rdd, TaskOutput, TaskRunner,
};
use crate::rpc::{AnyMsg, ReplyFn, RpcEndpoint, RpcEnv, RpcRef};
use crate::shuffle::MapOutputTrackerMaster;

/// Timing and traffic for one stage.
///
/// Traffic figures are the merged [`obs::MetricsSnapshot`]s of the stage's
/// tasks; read them through the accessors (or query the snapshot directly
/// with the `task.*` keys in [`obs::keys`]).
#[derive(Debug, Clone)]
pub struct StageMetrics {
    /// Stage label (`Job1-ShuffleMapStage`, `Job1-ResultStage`, ...).
    pub name: String,
    /// Attempt number of this run of the stage (0 on the first submission).
    pub attempt: u32,
    /// Virtual start time.
    pub start_ns: u64,
    /// Virtual end time.
    pub end_ns: u64,
    /// Task count.
    pub tasks: usize,
    /// Merged per-task metrics snapshots.
    pub metrics: obs::MetricsSnapshot,
}

impl StageMetrics {
    /// Wall (virtual) duration.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }

    /// Total time tasks spent blocked on remote shuffle data (ns).
    pub fn fetch_wait_ns(&self) -> u64 {
        self.metrics.counter(obs::keys::TASK_FETCH_WAIT_NS)
    }

    /// Virtual bytes fetched from remote executors.
    pub fn remote_bytes(&self) -> u64 {
        self.metrics.counter(obs::keys::TASK_REMOTE_BYTES)
    }

    /// Virtual bytes read from local blocks.
    pub fn local_bytes(&self) -> u64 {
        self.metrics.counter(obs::keys::TASK_LOCAL_BYTES)
    }

    /// Records produced across the stage's tasks.
    pub fn records_out(&self) -> u64 {
        self.metrics.counter(obs::keys::TASK_RECORDS_OUT)
    }
}

/// Timing for one job.
#[derive(Debug, Clone)]
pub struct JobMetrics {
    /// Sequential job id within the application.
    pub job_id: u32,
    /// Action that triggered the job.
    pub action: String,
    /// Virtual start time.
    pub start_ns: u64,
    /// Virtual end time.
    pub end_ns: u64,
    /// Per-stage breakdown.
    pub stages: Vec<StageMetrics>,
}

impl JobMetrics {
    /// Wall (virtual) duration.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }

    /// Duration of the stage whose name contains `fragment`, if any.
    ///
    /// Stages that share one name (a retried stage reruns under its
    /// original label) resolve to the first run. A fragment matching stages
    /// with *distinct* names is ambiguous and panics — the old behaviour
    /// silently returned whichever matching stage was recorded first, which
    /// made e.g. `"ShuffleMapStage"` quietly pick between a primary run and
    /// a `-retry` recomputation.
    pub fn stage_duration(&self, fragment: &str) -> Option<u64> {
        let matched: Vec<&StageMetrics> =
            self.stages.iter().filter(|s| s.name.contains(fragment)).collect();
        let first = *matched.first()?;
        let distinct: BTreeSet<&str> = matched.iter().map(|s| s.name.as_str()).collect();
        assert!(
            distinct.len() == 1,
            "ambiguous stage fragment {fragment:?}: matches distinct stages {distinct:?}; \
             pass a fragment that selects exactly one stage name"
        );
        Some(first.duration_ns())
    }
}

// --- messages exchanged with executors --------------------------------------

/// Executor → scheduler registration (ask; reply `bool`).
pub struct RegisterExecutor {
    /// Executor id.
    pub exec_id: usize,
    /// Task slots.
    pub cores: u32,
    /// Address of the executor's RPC environment.
    pub rpc_addr: fabric::PortAddr,
}

/// Scheduler → executor task launch (one-way).
pub struct LaunchTask {
    /// Stage instance (attempt) the task belongs to.
    pub stage_seq: u64,
    /// Partition to compute.
    pub part: usize,
    /// Stage attempt number.
    pub attempt: u32,
    /// Map-output epoch the attempt was launched under; echoed back in
    /// [`TaskFinishedMsg`] for stale-attempt discard and used by executors
    /// to age their location caches.
    pub epoch: u64,
    /// True for a straggler-speculation duplicate.
    pub speculative: bool,
    /// The work.
    pub runner: Arc<dyn TaskRunner>,
}

/// Executor → scheduler completion (one-way).
pub struct TaskFinishedMsg {
    /// Stage instance.
    pub stage_seq: u64,
    /// Partition computed.
    pub part: usize,
    /// Reporting executor.
    pub exec_id: usize,
    /// Epoch the task was launched under (stale-attempt discard).
    pub epoch: u64,
    /// The output (taken once by the scheduler).
    pub output: Mutex<Option<TaskOutput>>,
    /// Snapshot of the task's metrics registry.
    pub metrics: obs::MetricsSnapshot,
}

/// Executor stop command (one-way).
pub struct StopExecutor;

/// Scheduler → executor: map outputs for a shuffle changed location as of
/// `epoch` — drop location tables cached under older epochs (one-way).
pub struct InvalidateShuffle {
    /// The shuffle to invalidate.
    pub shuffle_id: u32,
    /// Tracker epoch after the loss.
    pub epoch: u64,
}

pub(crate) enum SchedEvent {
    ExecutorRegistered,
    TaskFinished {
        stage_seq: u64,
        part: usize,
        exec_id: usize,
        epoch: u64,
        output: TaskOutput,
        metrics: obs::MetricsSnapshot,
    },
    /// A job's virtual-clock deadline fired ([`simt::DeadlineTimer`] posts
    /// this from the engine thread, totally ordered with task completions).
    /// Stale instances — the job already completed, or a later job is
    /// draining the queue — are dropped by the `job_id` check.
    DeadlineExpired {
        job_id: u32,
    },
}

/// A registered executor.
#[derive(Clone)]
pub struct ExecutorHandle {
    /// Executor id.
    pub exec_id: usize,
    /// Reference to its `Executor` endpoint.
    pub rpc: RpcRef,
    /// Task slots.
    pub cores: u32,
}

/// The driver-side scheduler.
pub struct DagScheduler {
    env: OnceLock<Arc<RpcEnv>>,
    /// Weak self-pointer so `submit_job` can hand an owned reference to the
    /// per-job driver green thread; bound once by [`bind_self`].
    ///
    /// [`bind_self`]: DagScheduler::bind_self
    self_ref: OnceLock<Weak<DagScheduler>>,
    conf: SparkConf,
    executors: Mutex<Vec<ExecutorHandle>>,
    events: Queue<SchedEvent>,
    /// Map-output registry (also registered as an RPC endpoint).
    pub tracker: Arc<MapOutputTrackerMaster>,
    metrics: Mutex<Vec<JobMetrics>>,
    next_job: AtomicU32,
    next_stage_seq: AtomicU64,
    computed_shuffles: Mutex<BTreeSet<u32>>,
    /// Executors whose shuffle service failed a fetch; excluded from task
    /// placement so recomputed map outputs land on healthy executors.
    quarantined: Mutex<BTreeSet<usize>>,
    job_running: AtomicBool,
}

impl Default for DagScheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl DagScheduler {
    /// Fresh scheduler with default configuration (speculation off).
    pub fn new() -> Self {
        Self::with_conf(SparkConf::default())
    }

    /// Fresh scheduler driven by `conf` (stage-attempt cap, speculation
    /// policy).
    pub fn with_conf(conf: SparkConf) -> Self {
        DagScheduler {
            env: OnceLock::new(),
            self_ref: OnceLock::new(),
            conf,
            executors: Mutex::new(Vec::new()),
            events: Queue::new(),
            tracker: Arc::new(MapOutputTrackerMaster::default()),
            metrics: Mutex::new(Vec::new()),
            next_job: AtomicU32::new(0),
            next_stage_seq: AtomicU64::new(0),
            computed_shuffles: Mutex::new(BTreeSet::new()),
            quarantined: Mutex::new(BTreeSet::new()),
            job_running: AtomicBool::new(false),
        }
    }

    /// Attach the driver's RPC environment (needed to build executor refs).
    pub fn attach_env(&self, env: Arc<RpcEnv>) {
        let _ = self.env.set(env);
    }

    /// Bind the scheduler's own `Arc` so job submission can spawn per-job
    /// driver threads holding an owned reference. Idempotent; called by
    /// `SparkContext` construction (and directly by harnesses that drive
    /// the scheduler without a context).
    pub fn bind_self(self: &Arc<Self>) {
        let _ = self.self_ref.set(Arc::downgrade(self));
    }

    fn owned(&self) -> Arc<DagScheduler> {
        self.self_ref
            .get()
            .and_then(Weak::upgrade)
            .expect("DagScheduler::bind_self called before job submission")
    }

    /// Block until `n` executors have registered.
    pub fn wait_for_executors(&self, n: usize) {
        loop {
            if self.executors.lock().len() >= n {
                return;
            }
            match self.events.recv().expect("scheduler event queue open") {
                SchedEvent::ExecutorRegistered => {}
                // A previous job's deadline can still be armed while the
                // next app phase waits for executors; it is void by now.
                SchedEvent::DeadlineExpired { .. } => {}
                SchedEvent::TaskFinished { .. } => {
                    panic!("task completion before any job was submitted")
                }
            }
        }
    }

    /// Registered executors (snapshot).
    pub fn executors(&self) -> Vec<ExecutorHandle> {
        self.executors.lock().clone()
    }

    /// Completed job metrics (snapshot).
    pub fn job_metrics(&self) -> Vec<JobMetrics> {
        self.metrics.lock().clone()
    }

    /// The driver's observability handle (disabled until the RPC
    /// environment is attached).
    fn obs(&self) -> obs::Obs {
        self.env.get().map(|e| e.obs().clone()).unwrap_or_else(obs::Obs::disabled)
    }
}

impl JobRunner for DagScheduler {
    fn submit_job(&self, job: JobSpec, opts: JobOptions) -> JobHandle {
        assert!(
            !self.job_running.swap(true, Ordering::SeqCst),
            "concurrent jobs are not supported; run jobs sequentially from one driver thread"
        );
        let job_id = self.next_job.fetch_add(1, Ordering::Relaxed);
        let obs = self.obs();
        let partial = opts.is_partial();
        let timeout_ns = opts.timeout_ns;
        let state = JobState::new(job.result_tasks.len(), opts);
        if partial {
            obs.registry().counter(obs::keys::SPARK_PARTIAL_JOBS).inc();
        }
        // Arm the deadline before the job thread starts so a zero timeout
        // still totally orders ahead of every task completion.
        let timer = timeout_ns.map(|t| {
            let events = self.events.clone();
            simt::DeadlineTimer::after(t, move || {
                events.send(SchedEvent::DeadlineExpired { job_id })
            })
        });
        let sched = self.owned();
        let st = state.clone();
        // Each job runs on its own green thread driving the stage engine;
        // the submitting thread gets the handle back immediately (blocking
        // actions wait on it, approximate actions poll it). Spawning and
        // queue handoff charge no virtual time, so a waited job keeps the
        // exact timings of the old synchronous `run_job`.
        simt::spawn(format!("job-{job_id}-driver"), move || {
            let obs = sched.obs();
            let _span = obs.is_traced().then(|| {
                obs.span("spark.job", obs::kv! {"job_id" => job_id, "action" => &job.action})
            });
            let start_ns = simt::now();
            let (results, stages) = stage::run_job(&sched, &job, job_id, &st);
            if let Some(t) = &timer {
                t.cancel();
            }
            sched.metrics.lock().push(JobMetrics {
                job_id,
                action: job.action,
                start_ns,
                end_ns: simt::now(),
                stages,
            });
            sched.job_running.store(false, Ordering::SeqCst);
            st.complete(results);
        });
        JobHandle::new(state)
    }
}

impl RpcEndpoint for DagScheduler {
    fn receive(&self, msg: AnyMsg, reply: Option<ReplyFn>) {
        if let Ok(reg) = msg.clone().downcast::<RegisterExecutor>() {
            let env = self.env.get().expect("scheduler env attached").clone();
            let rpc = env.endpoint_ref(reg.rpc_addr, "Executor");
            self.executors.lock().push(ExecutorHandle {
                exec_id: reg.exec_id,
                rpc,
                cores: reg.cores,
            });
            self.events.send(SchedEvent::ExecutorRegistered);
            if let Some(reply) = reply {
                reply(Arc::new(true));
            }
            return;
        }
        if let Ok(fin) = msg.downcast::<TaskFinishedMsg>() {
            let output = fin.output.lock().take().expect("output taken once");
            self.events.send(SchedEvent::TaskFinished {
                stage_seq: fin.stage_seq,
                part: fin.part,
                exec_id: fin.exec_id,
                epoch: fin.epoch,
                output,
                metrics: fin.metrics.clone(),
            });
        }
    }
}

// --- SparkContext -------------------------------------------------------------

/// The user-facing application handle, owned by the driver.
pub struct SparkContext {
    core: Arc<AppCore>,
    sched: Arc<DagScheduler>,
    broadcasts: Arc<crate::broadcast::BroadcastRegistry>,
}

impl SparkContext {
    /// Build a context over a scheduler.
    pub fn new(conf: SparkConf, default_parallelism: usize, sched: Arc<DagScheduler>) -> Self {
        Self::with_broadcasts(conf, default_parallelism, sched, Arc::default())
    }

    /// Build a context sharing the driver's broadcast registry (the deploy
    /// layer passes the registry its stream manager serves from).
    pub fn with_broadcasts(
        conf: SparkConf,
        default_parallelism: usize,
        sched: Arc<DagScheduler>,
        broadcasts: Arc<crate::broadcast::BroadcastRegistry>,
    ) -> Self {
        sched.bind_self();
        let core = AppCore::new(conf, default_parallelism, sched.clone());
        SparkContext { core, sched, broadcasts }
    }

    /// Broadcast a read-only value to the executors: each executor fetches
    /// it from the driver once (charged as `virtual_size` wire bytes over
    /// the `StreamResponse` path) and caches it for all its tasks.
    pub fn broadcast<T: std::any::Any + Send + Sync>(
        &self,
        value: T,
        virtual_size: u64,
    ) -> crate::broadcast::Broadcast<T> {
        let id = self.broadcasts.register(Arc::new(value), virtual_size);
        crate::broadcast::Broadcast::new(id, virtual_size)
    }

    /// Engine configuration.
    pub fn conf(&self) -> SparkConf {
        self.core.conf
    }

    /// Default partition count (total cores in the paper's configs).
    pub fn default_parallelism(&self) -> usize {
        self.core.default_parallelism
    }

    /// Distribute an in-memory collection over `parts` partitions.
    pub fn parallelize<T: Element>(&self, data: Vec<T>, parts: usize) -> Rdd<T> {
        assert!(parts > 0);
        let mut chunks: Vec<Vec<T>> = (0..parts).map(|_| Vec::new()).collect();
        for (i, x) in data.into_iter().enumerate() {
            chunks[i % parts].push(x);
        }
        Rdd {
            core: self.core.clone(),
            ops: Arc::new(ParallelizeRdd { id: self.core.new_rdd_id(), data: Arc::new(chunks) }),
        }
    }

    /// A lazily generated dataset: partition `p` holds `f(p)`.
    pub fn generate<T: Element>(
        &self,
        parts: usize,
        f: impl Fn(usize) -> Vec<T> + Send + Sync + 'static,
    ) -> Rdd<T> {
        Rdd {
            core: self.core.clone(),
            ops: Arc::new(GenerateRdd { id: self.core.new_rdd_id(), parts, f: Arc::new(f) }),
        }
    }

    /// Metrics of all completed jobs.
    pub fn job_metrics(&self) -> Vec<JobMetrics> {
        self.sched.job_metrics()
    }

    /// The scheduler (deployment and tests).
    pub fn scheduler(&self) -> &Arc<DagScheduler> {
        &self.sched
    }
}
