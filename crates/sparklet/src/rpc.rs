//! The control-plane RPC environment (Spark's `RpcEnv` + `Dispatcher`).
//!
//! Every Spark process (master, worker, driver, executor) owns one `RpcEnv`:
//! a netz endpoint plus named local endpoints, each with its own dispatcher
//! green thread and mailbox — mirroring Spark's `Dispatcher`/`MessageLoop`
//! so that endpoint logic may block (e.g. the master RPCs workers while
//! handling a registration) without stalling the Netty event loop.

use std::any::Any;
use std::collections::BTreeMap;
use std::sync::Arc;

use fabric::{Net, NodeId, Payload, PortAddr};
use netz::{ChannelCore, NetzError, TransportClient, TransportConf, TransportContext};
use parking_lot::Mutex;
use simt::queue::Queue;

use crate::net_backend::{NetworkBackend, ProcIdentity};

/// Default virtual wire size charged for a control-plane message.
pub const CONTROL_WIRE_BYTES: u64 = 256;

/// A typed message as it travels the simulated control plane.
pub type AnyMsg = Arc<dyn Any + Send + Sync>;

/// Reply hook for two-way messages; absent for one-way sends.
pub type ReplyFn = Box<dyn FnOnce(AnyMsg) + Send>;

/// A named in-process endpoint (Spark's `RpcEndpoint`).
pub trait RpcEndpoint: Send + Sync + 'static {
    /// Handle one inbound message on the endpoint's dispatcher thread.
    /// Blocking here is safe; it only delays this endpoint's own mailbox.
    fn receive(&self, msg: AnyMsg, reply: Option<ReplyFn>);
}

struct Envelope {
    endpoint: String,
    msg: AnyMsg,
}

struct Inbound {
    msg: AnyMsg,
    reply: Option<ReplyFn>,
}

struct EnvHandler {
    endpoints: Arc<Mutex<BTreeMap<String, Queue<Inbound>>>>,
    streams: Arc<Mutex<Option<Arc<dyn netz::StreamManager>>>>,
}

impl netz::RpcHandler for EnvHandler {
    fn receive(
        &self,
        _chan: &Arc<ChannelCore>,
        body: Payload,
        reply: netz::context::RpcResponseCallback,
    ) {
        let Some(env) = body.value_as::<Envelope>() else {
            reply(Err("malformed control message".into()));
            return;
        };
        let q = self.endpoints.lock().get(&env.endpoint).cloned();
        match q {
            Some(q) => {
                let msg = env.msg.clone();
                q.send(Inbound {
                    msg,
                    reply: Some(Box::new(move |v: AnyMsg| {
                        reply(Ok(Payload::control_arc(v, CONTROL_WIRE_BYTES)));
                    })),
                });
            }
            None => reply(Err(format!("no such endpoint '{}'", env.endpoint))),
        }
    }

    fn receive_oneway(&self, _chan: &Arc<ChannelCore>, body: Payload) {
        let Some(env) = body.value_as::<Envelope>() else {
            return;
        };
        if let Some(q) = self.endpoints.lock().get(&env.endpoint).cloned() {
            q.send(Inbound { msg: env.msg.clone(), reply: None });
        }
    }

    fn stream_manager(&self) -> Arc<dyn netz::StreamManager> {
        self.streams.lock().clone().unwrap_or_else(|| Arc::new(netz::context::NoStreams))
    }
}

/// One process's RPC environment.
pub struct RpcEnv {
    server: netz::Endpoint,
    endpoints: Arc<Mutex<BTreeMap<String, Queue<Inbound>>>>,
    streams: Arc<Mutex<Option<Arc<dyn netz::StreamManager>>>>,
    clients: Mutex<BTreeMap<PortAddr, TransportClient>>,
    conf: TransportConf,
    name: String,
}

impl RpcEnv {
    /// Build the environment for process `identity`, optionally binding the
    /// server to a well-known `port` (the master does; everyone else takes
    /// an automatic port).
    pub fn new(
        net: &Net,
        identity: &ProcIdentity,
        backend: &Arc<dyn NetworkBackend>,
        port: Option<u64>,
    ) -> Arc<RpcEnv> {
        let endpoints: Arc<Mutex<BTreeMap<String, Queue<Inbound>>>> = Arc::default();
        let streams: Arc<Mutex<Option<Arc<dyn netz::StreamManager>>>> = Arc::default();
        let handler =
            Arc::new(EnvHandler { endpoints: endpoints.clone(), streams: streams.clone() });
        let ctx: TransportContext = backend.rpc_context(identity, net, handler);
        let conf = ctx.conf();
        let name = format!("rpc:{}", identity.name);
        let server = match port {
            Some(p) => ctx.create_server(name.clone(), identity.node, p),
            None => ctx.create_client_endpoint(name.clone(), identity.node),
        };
        Arc::new(RpcEnv {
            server,
            endpoints,
            streams,
            clients: Mutex::new(BTreeMap::new()),
            conf,
            name,
        })
    }

    /// Address other processes reach this environment at.
    pub fn addr(&self) -> PortAddr {
        self.server.addr()
    }

    /// Node this environment runs on.
    pub fn node(&self) -> NodeId {
        self.server.node()
    }

    /// The fabric's observability handle (tracer + metrics registry).
    pub fn obs(&self) -> &obs::Obs {
        self.server.net().obs()
    }

    /// Serve named streams from this environment (jar/file distribution;
    /// Spark's `NettyStreamManager`). Streams are answered with
    /// `StreamResponse` — one of the two message types whose body
    /// MPI4Spark-Optimized moves over MPI (§VI-E).
    pub fn set_stream_manager(&self, sm: Arc<dyn netz::StreamManager>) {
        *self.streams.lock() = Some(sm);
    }

    /// Fetch a named stream from a remote environment (blocks for the
    /// data).
    pub fn fetch_stream(&self, addr: PortAddr, name: &str) -> Result<Payload, NetzError> {
        let client = self.client(addr)?;
        client.open_stream(name)
    }

    /// Register a named endpoint; spawns its dispatcher thread.
    pub fn register(&self, name: impl Into<String>, endpoint: Arc<dyn RpcEndpoint>) {
        let name = name.into();
        let q: Queue<Inbound> = Queue::new();
        let prev = self.endpoints.lock().insert(name.clone(), q.clone());
        assert!(prev.is_none(), "endpoint '{name}' already registered");
        simt::spawn_daemon(format!("{}:dispatch:{name}", self.name), move || {
            while let Ok(inbound) = q.recv() {
                endpoint.receive(inbound.msg, inbound.reply);
            }
        });
    }

    /// Unregister an endpoint (its dispatcher drains and stops).
    pub fn unregister(&self, name: &str) {
        if let Some(q) = self.endpoints.lock().remove(name) {
            q.close();
        }
    }

    /// A reference to endpoint `name` at `addr`.
    pub fn endpoint_ref(self: &Arc<Self>, addr: PortAddr, name: impl Into<String>) -> RpcRef {
        RpcRef { env: self.clone(), addr, endpoint: name.into() }
    }

    fn client(&self, addr: PortAddr) -> Result<TransportClient, NetzError> {
        {
            let cache = self.clients.lock();
            if let Some(c) = cache.get(&addr) {
                if c.is_active() {
                    return Ok(c.clone());
                }
            }
        }
        let c = self.server.connect(addr)?;
        self.clients.lock().insert(addr, c.clone());
        Ok(c)
    }

    /// Tear down outgoing connections and the server endpoint.
    pub fn shutdown(&self) {
        // Snapshot under the lock, close outside it. `close()` charges
        // virtual send time for the FIN frame — a simt wait point — and
        // writing `for c in ...lock()...` would hold the guard across it
        // (the iterator expression's temporary lives for the whole loop).
        // A deadline-expired job can still have tasks in flight here, and
        // their completion sends must be able to take this lock meanwhile.
        let clients: Vec<TransportClient> =
            std::mem::take(&mut *self.clients.lock()).into_values().collect();
        for c in clients {
            c.close();
        }
        let names: Vec<String> = self.endpoints.lock().keys().cloned().collect();
        for n in names {
            self.unregister(&n);
        }
        self.server.shutdown();
    }

    /// Request timeout from the transport configuration.
    pub fn request_timeout_ns(&self) -> u64 {
        self.conf.request_timeout_ns
    }
}

/// A remote endpoint reference (Spark's `RpcEndpointRef`).
#[derive(Clone)]
pub struct RpcRef {
    env: Arc<RpcEnv>,
    addr: PortAddr,
    endpoint: String,
}

impl RpcRef {
    /// Remote address.
    pub fn addr(&self) -> PortAddr {
        self.addr
    }

    /// Two-way ask: blocks for the typed reply.
    pub fn ask<R: Any + Send + Sync>(
        &self,
        msg: impl Any + Send + Sync,
    ) -> Result<Arc<R>, NetzError> {
        self.ask_sized::<R>(msg, CONTROL_WIRE_BYTES)
    }

    /// Two-way ask with an explicit virtual wire size.
    pub fn ask_sized<R: Any + Send + Sync>(
        &self,
        msg: impl Any + Send + Sync,
        wire: u64,
    ) -> Result<Arc<R>, NetzError> {
        let client = self.env.client(self.addr)?;
        let envelope = Envelope { endpoint: self.endpoint.clone(), msg: Arc::new(msg) };
        let reply = client.send_rpc(Payload::control(envelope, wire))?;
        reply
            .value
            .clone()
            .and_then(|v| v.downcast::<R>().ok())
            .ok_or_else(|| NetzError::codec("reply type mismatch"))
    }

    /// One-way send (no reply).
    pub fn send(&self, msg: impl Any + Send + Sync) -> Result<(), NetzError> {
        self.send_sized(msg, CONTROL_WIRE_BYTES)
    }

    /// One-way send with an explicit virtual wire size.
    pub fn send_sized(&self, msg: impl Any + Send + Sync, wire: u64) -> Result<(), NetzError> {
        let client = self.env.client(self.addr)?;
        let envelope = Envelope { endpoint: self.endpoint.clone(), msg: Arc::new(msg) };
        client.send_oneway(Payload::control(envelope, wire));
        Ok(())
    }
}

impl std::fmt::Debug for RpcRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RpcRef({}@{})", self.endpoint, self.addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net_backend::{Role, VanillaBackend};
    use fabric::ClusterSpec;
    use simt::Sim;

    struct Adder;
    impl RpcEndpoint for Adder {
        fn receive(&self, msg: AnyMsg, reply: Option<ReplyFn>) {
            let pair = msg.downcast::<(u64, u64)>().expect("typed message");
            if let Some(reply) = reply {
                reply(Arc::new(pair.0 + pair.1));
            }
        }
    }

    struct Recorder(Arc<Mutex<Vec<u64>>>);
    impl RpcEndpoint for Recorder {
        fn receive(&self, msg: AnyMsg, _reply: Option<ReplyFn>) {
            self.0.lock().push(*msg.downcast::<u64>().unwrap());
        }
    }

    fn identity(node: usize, name: &str) -> ProcIdentity {
        ProcIdentity { role: Role::Driver, node, name: name.to_string(), ext: None }
    }

    #[test]
    fn ask_roundtrip() {
        let sim = Sim::new();
        sim.spawn("main", || {
            let net = Net::new(&ClusterSpec::test(2));
            let backend: Arc<dyn NetworkBackend> = Arc::new(VanillaBackend::default());
            let server_env = RpcEnv::new(&net, &identity(0, "server"), &backend, Some(700));
            server_env.register("adder", Arc::new(Adder));
            let client_env = RpcEnv::new(&net, &identity(1, "client"), &backend, None);
            let r = client_env.endpoint_ref(server_env.addr(), "adder");
            let sum = r.ask::<u64>((20u64, 22u64)).unwrap();
            assert_eq!(*sum, 42);
        });
        sim.run().unwrap().assert_clean();
    }

    #[test]
    fn oneway_send_reaches_endpoint() {
        let sim = Sim::new();
        let seen = Arc::new(Mutex::new(Vec::new()));
        let seen2 = seen.clone();
        sim.spawn("main", move || {
            let net = Net::new(&ClusterSpec::test(2));
            let backend: Arc<dyn NetworkBackend> = Arc::new(VanillaBackend::default());
            let server_env = RpcEnv::new(&net, &identity(0, "server"), &backend, Some(700));
            server_env.register("rec", Arc::new(Recorder(seen2)));
            let client_env = RpcEnv::new(&net, &identity(1, "client"), &backend, None);
            let r = client_env.endpoint_ref(server_env.addr(), "rec");
            for i in 0..5u64 {
                r.send(i).unwrap();
            }
            simt::sleep(simt::time::millis(10));
        });
        sim.run().unwrap().assert_clean();
        assert_eq!(seen.lock().clone(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn unknown_endpoint_is_remote_error() {
        let sim = Sim::new();
        sim.spawn("main", || {
            let net = Net::new(&ClusterSpec::test(2));
            let backend: Arc<dyn NetworkBackend> = Arc::new(VanillaBackend::default());
            let server_env = RpcEnv::new(&net, &identity(0, "server"), &backend, Some(700));
            let client_env = RpcEnv::new(&net, &identity(1, "client"), &backend, None);
            let r = client_env.endpoint_ref(server_env.addr(), "ghost");
            match r.ask::<u64>(1u64) {
                Err(NetzError::Remote(e)) => assert!(e.contains("ghost")),
                other => panic!("expected remote error, got {other:?}"),
            }
        });
        sim.run().unwrap().assert_clean();
    }

    #[test]
    fn reply_type_mismatch_is_codec_error() {
        let sim = Sim::new();
        sim.spawn("main", || {
            let net = Net::new(&ClusterSpec::test(2));
            let backend: Arc<dyn NetworkBackend> = Arc::new(VanillaBackend::default());
            let server_env = RpcEnv::new(&net, &identity(0, "server"), &backend, Some(700));
            server_env.register("adder", Arc::new(Adder));
            let client_env = RpcEnv::new(&net, &identity(1, "client"), &backend, None);
            let r = client_env.endpoint_ref(server_env.addr(), "adder");
            // Ask for a String where the endpoint replies u64.
            assert!(matches!(r.ask::<String>((1u64, 2u64)), Err(NetzError::Codec(_))));
        });
        sim.run().unwrap().assert_clean();
    }

    #[test]
    fn fetch_stream_roundtrip() {
        use crate::net_backend::{NetworkBackend, ProcIdentity, Role, VanillaBackend};
        use fabric::{ClusterSpec, Net};
        use std::sync::Arc;
        struct S;
        impl netz::StreamManager for S {
            fn get_chunk(&self, _s: u64, _c: u32) -> Result<fabric::Payload, String> {
                Err("no".into())
            }
            fn open_stream(&self, name: &str) -> Result<fabric::Payload, String> {
                Ok(fabric::Payload::control(name.to_string(), 128))
            }
        }
        let sim = simt::Sim::new();
        sim.spawn("main", || {
            let net = Net::new(&ClusterSpec::test(2));
            let backend: Arc<dyn NetworkBackend> = Arc::new(VanillaBackend::default());
            let a = crate::rpc::RpcEnv::new(
                &net,
                &ProcIdentity::new(Role::Driver, 0, "a"),
                &backend,
                Some(700),
            );
            a.set_stream_manager(Arc::new(S));
            let b = crate::rpc::RpcEnv::new(
                &net,
                &ProcIdentity::new(Role::Executor(0), 1, "b"),
                &backend,
                None,
            );
            let p = b.fetch_stream(a.addr(), "/broadcast/7").unwrap();
            assert_eq!(*p.value_as::<String>().unwrap(), "/broadcast/7");
        });
        sim.run().unwrap().assert_clean();
    }

    #[test]
    fn endpoints_block_independently() {
        // A blocking endpoint must not stall another endpoint in the same
        // env (separate dispatcher threads).
        struct Slow;
        impl RpcEndpoint for Slow {
            fn receive(&self, _m: AnyMsg, reply: Option<ReplyFn>) {
                simt::sleep(simt::time::millis(100));
                if let Some(r) = reply {
                    r(Arc::new(1u64));
                }
            }
        }
        let sim = Sim::new();
        sim.spawn("main", || {
            let net = Net::new(&ClusterSpec::test(2));
            let backend: Arc<dyn NetworkBackend> = Arc::new(VanillaBackend::default());
            let server_env = RpcEnv::new(&net, &identity(0, "server"), &backend, Some(700));
            server_env.register("slow", Arc::new(Slow));
            server_env.register("adder", Arc::new(Adder));
            let client_env = RpcEnv::new(&net, &identity(1, "client"), &backend, None);
            let slow = client_env.endpoint_ref(server_env.addr(), "slow");
            let fast = client_env.endpoint_ref(server_env.addr(), "adder");
            simt::spawn("slow-ask", move || {
                slow.ask::<u64>(0u64).unwrap();
            });
            simt::sleep(simt::time::millis(1));
            let t0 = simt::now();
            fast.ask::<u64>((1u64, 1u64)).unwrap();
            assert!(simt::now() - t0 < simt::time::millis(50));
        });
        sim.run().unwrap().assert_clean();
    }
}
