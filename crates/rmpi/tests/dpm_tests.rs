//! End-to-end tests of Dynamic Process Management: spawn, parent
//! intercommunicators, child-world shuffles, and intercomm merge — the MPI
//! machinery MPI4Spark's launcher is built on (paper §V, Fig. 3).

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use fabric::{ClusterSpec, Net};
use parking_lot::Mutex;
use rmpi::{mpiexec, Comm, SpawnSpec};
use simt::Sim;

fn run(n_nodes: usize, ranks: usize, f: impl Fn(Comm) + Send + Sync + 'static) {
    let sim = Sim::new();
    let placements: Vec<usize> = (0..ranks).map(|i| i % n_nodes).collect();
    sim.spawn("launcher", move || {
        let net = Net::new(&ClusterSpec::test(n_nodes));
        mpiexec(&net, &placements, f);
    });
    sim.run().unwrap().assert_clean();
}

#[test]
fn spawned_children_get_their_own_world() {
    let child_views = Arc::new(Mutex::new(Vec::new()));
    let cv = child_views.clone();
    run(2, 2, move |world| {
        let specs = if world.rank() == 0 {
            let mut v = Vec::new();
            for i in 0..3usize {
                let cv = cv.clone();
                v.push(SpawnSpec::new(format!("child{i}"), i % 2, move |child_world: Comm| {
                    cv.lock().push((child_world.rank(), child_world.size()));
                }));
            }
            Some(v)
        } else {
            None
        };
        let inter = world.spawn_multiple(0, specs).unwrap();
        assert!(inter.is_inter());
        assert_eq!(inter.remote_size(), 3);
        assert_eq!(inter.size(), 2);
    });
    let mut v = child_views.lock().clone();
    v.sort_unstable();
    assert_eq!(v, vec![(0, 3), (1, 3), (2, 3)]);
}

#[test]
fn parent_and_child_communicate_over_intercomm() {
    run(2, 2, move |world| {
        let specs = if world.rank() == 0 {
            Some(vec![SpawnSpec::new("child", 1, move |child_world: Comm| {
                let parent = child_world.parent().expect("child has a parent intercomm");
                assert_eq!(parent.remote_size(), 2); // two parents
                let (v, st) = parent.recv_value::<String>(Some(0), Some(9)).unwrap();
                assert_eq!(*v, "hello child");
                assert_eq!(st.source, 0);
                parent
                    .send_value(0, 10, format!("ack from child {}", child_world.rank()), 32)
                    .unwrap();
            })])
        } else {
            None
        };
        let inter = world.spawn_multiple(0, specs).unwrap();
        if world.rank() == 0 {
            inter.send_value(0, 9, "hello child".to_string(), 32).unwrap();
            let (v, _) = inter.recv_value::<String>(Some(0), Some(10)).unwrap();
            assert_eq!(*v, "ack from child 0");
        }
    });
}

#[test]
fn children_shuffle_over_child_world_dpm_comm() {
    // The paper's executor-to-executor pattern: shuffle traffic flows over
    // DPM_COMM (the child world), not the parent intercomm.
    let sum = Arc::new(AtomicU32::new(0));
    let s2 = sum.clone();
    run(2, 2, move |world| {
        let specs = if world.rank() == 0 {
            let mut v = Vec::new();
            for i in 0..4usize {
                let s3 = s2.clone();
                v.push(SpawnSpec::new(format!("exec{i}"), i % 2, move |dpm_comm: Comm| {
                    // All-to-all: every child sends its rank to every other.
                    let me = dpm_comm.rank();
                    let n = dpm_comm.size();
                    for dst in 0..n {
                        if dst != me {
                            dpm_comm.send_value(dst, 500 + u64::from(me), me, 8).unwrap();
                        }
                    }
                    let mut acc = 0;
                    for src in 0..n {
                        if src != me {
                            let (v, _) = dpm_comm
                                .recv_value::<u32>(Some(src), Some(500 + u64::from(src)))
                                .unwrap();
                            acc += *v;
                        }
                    }
                    s3.fetch_add(acc, Ordering::SeqCst);
                }));
            }
            Some(v)
        } else {
            None
        };
        world.spawn_multiple(0, specs).unwrap();
    });
    // Each of 4 children receives the other three ranks: per-child sums are
    // (1+2+3)=6, (0+2+3)=5, (0+1+3)=4, (0+1+2)=3 → 18 total.
    assert_eq!(sum.load(Ordering::SeqCst), 18);
}

#[test]
fn merge_builds_combined_intracomm() {
    let merged_views = Arc::new(Mutex::new(Vec::new()));
    let mv = merged_views.clone();
    run(2, 2, move |world| {
        let mv_child = mv.clone();
        let specs = if world.rank() == 0 {
            Some(vec![
                SpawnSpec::new("c0", 0, {
                    let mv = mv_child.clone();
                    move |cw: Comm| {
                        let parent = cw.parent().unwrap();
                        let merged = parent.merge().unwrap();
                        mv.lock().push(("child", merged.rank(), merged.size()));
                        merged.barrier().unwrap();
                    }
                }),
                SpawnSpec::new("c1", 1, {
                    let mv = mv_child.clone();
                    move |cw: Comm| {
                        let parent = cw.parent().unwrap();
                        let merged = parent.merge().unwrap();
                        mv.lock().push(("child", merged.rank(), merged.size()));
                        merged.barrier().unwrap();
                    }
                }),
            ])
        } else {
            None
        };
        let inter = world.spawn_multiple(0, specs).unwrap();
        let merged = inter.merge().unwrap();
        mv.lock().push(("parent", merged.rank(), merged.size()));
        merged.barrier().unwrap();
    });
    let mut v = merged_views.lock().clone();
    v.sort_unstable();
    // 2 parents (merged ranks 0,1) + 2 children (merged ranks 2,3), size 4.
    assert_eq!(v, vec![("child", 2, 4), ("child", 3, 4), ("parent", 0, 4), ("parent", 1, 4)]);
}

#[test]
fn spawn_from_nonzero_root() {
    let hits = Arc::new(AtomicU32::new(0));
    let h2 = hits.clone();
    run(2, 3, move |world| {
        let specs = if world.rank() == 2 {
            let h3 = h2.clone();
            Some(vec![SpawnSpec::new("kid", 0, move |_cw: Comm| {
                h3.fetch_add(1, Ordering::SeqCst);
            })])
        } else {
            None
        };
        let inter = world.spawn_multiple(2, specs).unwrap();
        assert_eq!(inter.remote_size(), 1);
    });
    assert_eq!(hits.load(Ordering::SeqCst), 1);
}

#[test]
fn nested_spawn_children_can_spawn_grandchildren() {
    let hits = Arc::new(AtomicU32::new(0));
    let h2 = hits.clone();
    run(2, 1, move |world| {
        let h3 = h2.clone();
        let specs = Some(vec![SpawnSpec::new("child", 1, move |cw: Comm| {
            let h4 = h3.clone();
            let specs = Some(vec![SpawnSpec::new("grandchild", 0, move |_gw: Comm| {
                h4.fetch_add(1, Ordering::SeqCst);
            })]);
            cw.spawn_multiple(0, specs).unwrap();
        })]);
        world.spawn_multiple(0, specs).unwrap();
    });
    assert_eq!(hits.load(Ordering::SeqCst), 1);
}

#[test]
fn iprobe_sees_pending_message_without_consuming() {
    run(2, 2, move |world| {
        if world.rank() == 0 {
            world.send_value(1, 77, 123u64, 8).unwrap();
        } else {
            // Poll until visible (the Basic design's pattern, §VI-D).
            loop {
                if let Some(st) = world.iprobe(Some(0), Some(77)) {
                    assert_eq!(st.source, 0);
                    break;
                }
                simt::sleep(1_000);
            }
            let (v, _) = world.recv_value::<u64>(Some(0), Some(77)).unwrap();
            assert_eq!(*v, 123);
        }
    });
}

#[test]
fn deterministic_virtual_times_across_runs() {
    fn once() -> u64 {
        let sim = Sim::new();
        let end = Arc::new(Mutex::new(0));
        let e2 = end.clone();
        sim.spawn("launcher", move || {
            let net = Net::new(&ClusterSpec::test(2));
            mpiexec(&net, &[0, 1, 0, 1], move |comm| {
                let v = comm.allgather(u64::from(comm.rank()), 1024).unwrap();
                assert_eq!(v.len(), 4);
            });
        });
        let r = sim.run().unwrap();
        *e2.lock() = r.now;
        let out = *end.lock();
        out
    }
    assert_eq!(once(), once());
}
