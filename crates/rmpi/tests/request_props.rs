//! Property: batched completion is observationally equivalent to sequential
//! completion. `waitall(reqs)` must yield exactly the payloads a sequential
//! `wait()` loop yields, in request order, finishing at the same virtual
//! time — whatever the arrival order, posting order, or send staggering.
//! This pins the reservation semantics: posted receives reserve their match
//! at arrival, so no completion strategy can re-match messages differently.

use std::sync::Arc;

use fabric::{ClusterSpec, Net};
use parking_lot::Mutex;
use proptest::prelude::*;
use rmpi::{mpiexec, waitall, Comm};
use simt::Sim;

const TAG_BASE: u64 = 10_000;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Completion {
    Waitall,
    Sequential,
}

/// One observed fan-in round: payload values and sources in request order,
/// plus the virtual time when the whole batch had completed.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Observed {
    values: Vec<u64>,
    sources: Vec<u32>,
    done_at: u64,
}

/// Deterministic permutation of `0..n` derived from `seed` (Fisher–Yates
/// over a splitmix64 stream).
fn permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        perm.swap(i, j);
    }
    perm
}

/// Rank 0 sends message `i` (value `i`, tag `TAG_BASE + i`) at absolute
/// virtual time `times[i]`; rank 1 posts receives in `perm` order and
/// completes them with the given strategy.
fn run_fanin(times: Vec<u64>, perm: Vec<usize>, mode: Completion) -> Observed {
    let out: Arc<Mutex<Option<Observed>>> = Arc::new(Mutex::new(None));
    let out2 = out.clone();
    let sim = Sim::new();
    sim.spawn("launcher", move || {
        let net = Net::new(&ClusterSpec::test(2));
        let out3 = out2.clone();
        mpiexec(&net, &[0, 1], move |comm: Comm| {
            if comm.rank() == 0 {
                let mut order: Vec<usize> = (0..times.len()).collect();
                order.sort_by_key(|&i| (times[i], i));
                for i in order {
                    let at = times[i];
                    if at > simt::now() {
                        simt::sleep(at - simt::now());
                    }
                    comm.send_value(1, TAG_BASE + i as u64, i as u64, 8).unwrap();
                }
            } else {
                let reqs: Vec<rmpi::Request> =
                    perm.iter().map(|&i| comm.irecv(Some(0), Some(TAG_BASE + i as u64))).collect();
                let completed: Vec<(u64, u32)> = match mode {
                    Completion::Waitall => waitall(reqs)
                        .unwrap()
                        .into_iter()
                        .map(|done| {
                            let (payload, status) = done.expect("receive yields a message");
                            (*payload.value_as::<u64>().unwrap(), status.source)
                        })
                        .collect(),
                    Completion::Sequential => reqs
                        .into_iter()
                        .map(|req| {
                            let (payload, status) =
                                req.wait().unwrap().expect("receive yields a message");
                            (*payload.value_as::<u64>().unwrap(), status.source)
                        })
                        .collect(),
                };
                *out3.lock() = Some(Observed {
                    values: completed.iter().map(|(v, _)| *v).collect(),
                    sources: completed.iter().map(|(_, s)| *s).collect(),
                    done_at: simt::now(),
                });
            }
        });
    });
    sim.run().unwrap().assert_clean();
    let observed = out.lock().take().expect("receiver finished");
    sim.shutdown();
    observed
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn waitall_matches_sequential_waits(
        times in proptest::collection::vec(0u64..200_000, 1..14),
        perm_seed in any::<u64>(),
    ) {
        let perm = permutation(times.len(), perm_seed);

        let batched = run_fanin(times.clone(), perm.clone(), Completion::Waitall);
        let sequential = run_fanin(times.clone(), perm.clone(), Completion::Sequential);

        // Same payloads, same sources, same virtual completion time.
        prop_assert_eq!(&batched, &sequential);

        // And both honour the reservation contract: request order is the
        // posting permutation, whatever order the messages arrived in.
        let expected: Vec<u64> = perm.iter().map(|&i| i as u64).collect();
        prop_assert_eq!(&batched.values, &expected);
        prop_assert!(batched.sources.iter().all(|&s| s == 0));

        // A batch can never finish before its slowest member arrives.
        let slowest = times.iter().copied().max().unwrap_or(0);
        prop_assert!(
            batched.done_at >= slowest,
            "batch completed at {} before the last send at {}",
            batched.done_at,
            slowest
        );
    }

    #[test]
    fn repeated_runs_are_bit_identical(
        times in proptest::collection::vec(0u64..100_000, 1..10),
        perm_seed in any::<u64>(),
    ) {
        // Same seed ⇒ byte-identical observations, run to run: completion
        // order inside the store derives from virtual time + posting order,
        // never from host scheduling.
        let perm = permutation(times.len(), perm_seed);
        let a = run_fanin(times.clone(), perm.clone(), Completion::Waitall);
        let b = run_fanin(times.clone(), perm.clone(), Completion::Waitall);
        prop_assert_eq!(a, b);
    }
}
