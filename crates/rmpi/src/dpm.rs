//! Dynamic Process Management: `MPI_Comm_spawn_multiple`, parent
//! intercommunicators, and intercomm merge.
//!
//! This is the facility MPI4Spark leans on to preserve Spark's execution
//! model (paper challenge 3): worker processes must dynamically fork
//! isolated executor processes, but under MPI every process needs to be an
//! MPI process — so executors are *spawned* with DPM. Children share a fresh
//! child world (the paper's `DPM_COMM`, over which executors shuffle) and
//! reach their parents through the returned intercommunicator (paper Fig. 3
//! Step C).

use fabric::NodeId;

use crate::comm::Comm;
use crate::launch::RankEntry;
use crate::proc::CommGroups;
use crate::types::{CommId, MpiError, ProcId};

/// One child process specification for [`Comm::spawn_multiple`]
/// (`MPI_Comm_spawn_multiple` takes an array of executable specifications;
/// here the "executable" is an entry closure).
pub struct SpawnSpec {
    /// Child process name (diagnostics).
    pub name: String,
    /// Node to place the child on.
    pub node: NodeId,
    /// Child main, called with the child-world communicator.
    pub entry: RankEntry,
}

impl SpawnSpec {
    /// Build a spec.
    pub fn new(
        name: impl Into<String>,
        node: NodeId,
        entry: impl FnOnce(Comm) + Send + 'static,
    ) -> Self {
        SpawnSpec { name: name.into(), node, entry: Box::new(entry) }
    }
}

impl Comm {
    /// Collectively spawn child processes (`MPI_Comm_spawn_multiple`).
    ///
    /// Every member of this intracommunicator must call; `root` supplies the
    /// specs (the paper allgathers executor arguments beforehand so the root
    /// has the complete set — see §V). Returns the parent↔children
    /// intercommunicator. Children receive the child world as their entry
    /// argument and can obtain this intercommunicator via [`Comm::parent`].
    pub fn spawn_multiple(
        &self,
        root: u32,
        specs: Option<Vec<SpawnSpec>>,
    ) -> Result<Comm, MpiError> {
        assert!(!self.is_inter(), "spawn_multiple requires an intracommunicator");
        let rank = self.rank();
        let inter_id: u64 = if rank == root {
            let specs = specs.expect("spawn root must supply specs");
            if specs.is_empty() {
                return Err(MpiError::SpawnFailed("empty spec list".into()));
            }
            let uni = self.universe().clone();
            // Register children and their world.
            let child_ids: Vec<ProcId> =
                specs.iter().map(|s| uni.register_proc(&s.name, s.node)).collect();
            let child_world = uni.register_comm(CommGroups::Intra(child_ids.clone()));
            // Intercomm: group A = this comm's members, group B = children.
            let parent_members = self.members();
            let inter =
                uni.register_comm(CommGroups::Inter { a: parent_members, b: child_ids.clone() });
            // Record parentage before any child runs.
            {
                let mut parents = uni.state.parents.lock();
                for c in &child_ids {
                    parents.insert(*c, inter);
                }
            }
            // Launch the children.
            for (spec, cid) in specs.into_iter().zip(child_ids.iter()) {
                let child_comm = Comm::new(uni.clone(), child_world, *cid);
                let name = spec.name.clone();
                let entry = spec.entry;
                simt::spawn(format!("dpm:{name}"), move || entry(child_comm));
            }
            self.bcast(root, Some(inter.0), 16)?
        } else {
            self.bcast::<u64>(root, None, 16)?
        };
        Ok(self.rebind_comm(CommId(inter_id)))
    }

    /// The parent intercommunicator, for DPM-spawned processes
    /// (`MPI_Comm_get_parent`).
    pub fn parent(&self) -> Option<Comm> {
        let uni = self.universe().clone();
        let inter = *uni.state.parents.lock().get(&self.proc_id())?;
        Some(self.rebind_comm(inter))
    }

    /// Merge an intercommunicator into one intracommunicator
    /// (`MPI_Intercomm_merge`): group A ranks first, then group B. All
    /// members of both groups must call.
    pub fn merge(&self) -> Result<Comm, MpiError> {
        let (a, b) = {
            let info = self.universe().state.comms.lock().get(&self.id()).unwrap().clone();
            match &info.groups {
                CommGroups::Inter { a, b } => (a.clone(), b.clone()),
                CommGroups::Intra(_) => panic!("merge requires an intercommunicator"),
            }
        };
        let me = self.proc_id();
        let i_am_a = a.contains(&me);
        let seq = self.next_coll_seq();
        let tag = (1 << 61) | seq;
        let merged_id: u64 = if i_am_a && a[0] == me {
            // Group-A rank 0 performs the registration and distributes it.
            let uni = self.universe().clone();
            let mut members = a.clone();
            members.extend(b.iter().copied());
            let merged = uni.register_comm(CommGroups::Intra(members));
            // Direct notify every other participant (A ranks then B ranks).
            for r in 1..a.len() as u32 {
                // Within group A we cannot use the intercomm (it addresses
                // the remote group), so send via the merged comm itself:
                // register first, then address A members by merged rank.
                let m = Comm::new(uni.clone(), merged, me);
                m.send_value(r, tag, merged.0, 16)?;
            }
            for r in 0..b.len() as u32 {
                self.send_value(r, tag, merged.0, 16)?;
            }
            merged.0
        } else if i_am_a {
            // Receive on *some* communicator we're already a member of:
            // the sender used the merged comm, whose messages arrive at our
            // store keyed by the merged comm id we don't know yet. Instead,
            // A-side non-roots wait on the raw store for the tag.
            let (v, _st) = self.recv_any_comm_value::<u64>(tag)?;
            v
        } else {
            let (v, _st) = self.recv_value::<u64>(Some(0), Some(tag))?;
            *v
        };
        Ok(self.rebind_comm(CommId(merged_id)))
    }

    /// Members of an intracommunicator (rank order).
    pub(crate) fn members(&self) -> Vec<ProcId> {
        let info = self.universe().state.comms.lock().get(&self.id()).unwrap().clone();
        match &info.groups {
            CommGroups::Intra(g) => g.clone(),
            CommGroups::Inter { .. } => panic!("members() on intercommunicator"),
        }
    }

    fn rebind_comm(&self, comm: CommId) -> Comm {
        Comm::new(self.universe().clone(), comm, self.proc_id())
    }

    /// Receive a typed value matching `tag` on *any* communicator — only
    /// used by the merge bootstrap, where the receiver does not yet know the
    /// merged communicator's id.
    fn recv_any_comm_value<T: std::any::Any + Send + Sync + Copy>(
        &self,
        tag: u64,
    ) -> Result<(T, crate::types::Status), MpiError> {
        let uni = self.universe().clone();
        let me = uni.state.procs.lock().get(&self.proc_id()).unwrap().clone();
        let msg = me.store.recv_any_comm(tag)?;
        let v = msg.payload.value_as::<T>().expect("typed receive matched another type");
        Ok((
            *v,
            crate::types::Status {
                source: msg.src_rank,
                tag: msg.tag,
                len: msg.payload.virtual_len,
            },
        ))
    }
}
