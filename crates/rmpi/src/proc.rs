//! Per-process receive machinery: the unexpected-message queue and the
//! progress pump.
//!
//! Every MPI process owns one fabric mailbox port. A daemon *pump* green
//! thread (the analog of an MPI progress engine) drains the port into a
//! [`MsgStore`], where blocking receives match on `(communicator, source,
//! tag)` — messages that arrive before a matching receive wait in the store,
//! exactly like MPI's unexpected message queue.

use std::collections::BTreeMap;
use std::sync::Arc;

use fabric::{Net, NodeId, Payload, PortAddr};
use parking_lot::Mutex;
use simt::engine::{park, wait_token, WaitToken};

use crate::types::{CommId, MpiError, ProcId, Status};

/// CPU cost of one `iprobe` sweep (paper §VI-D: the Basic design's polling
/// primitive; "too compute-intensive" when spun in a selector loop).
pub const IPROBE_CPU_NS: u64 = 300;

/// An in-flight or stored MPI message.
#[derive(Debug, Clone)]
pub struct MpiMsg {
    /// Communicator the message was sent on.
    pub comm: CommId,
    /// Sender's rank as visible to the receiver (remote-group rank for
    /// intercommunicators).
    pub src_rank: u32,
    /// Message tag.
    pub tag: u64,
    /// User payload.
    pub payload: Payload,
}

/// Handle to a posted (nonblocking) receive slot in a [`MsgStore`].
///
/// Ids are allocated in post order; matching among simultaneously-eligible
/// posted receives always prefers the lowest id, so completion is a pure
/// function of arrival order + post order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ReqId(u64);

/// State of one posted receive.
enum PostState {
    /// Waiting for a matching message.
    Pending,
    /// Matched: the message is *pinned* here — invisible to `recv`/`probe`
    /// and to every other posted receive. `seq` is the store-wide completion
    /// sequence number (arrival order), used by batched waits to pick the
    /// earliest completion deterministically.
    Ready { msg: MpiMsg, seq: u64 },
}

struct PostedRecv {
    matcher: Matcher,
    state: PostState,
}

#[derive(Default)]
struct StoreState {
    msgs: Vec<MpiMsg>,
    waiters: Vec<WaitToken>,
    closed: bool,
    /// Posted receives, keyed by id (== post order).
    posted: BTreeMap<u64, PostedRecv>,
    /// One-shot absorbers installed by cancelled receives: the next `count`
    /// messages a cancelled matcher would have consumed are dropped on
    /// arrival instead of accumulating as unexpected messages.
    drains: BTreeMap<Matcher, u64>,
    next_req: u64,
    next_completion: u64,
}

/// The unexpected-message queue plus posted-receive slots and waiter
/// bookkeeping.
#[derive(Clone, Default)]
pub struct MsgStore {
    state: Arc<Mutex<StoreState>>,
}

/// A match predicate: communicator, optional source rank, optional tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Matcher {
    /// Communicator to match.
    pub comm: CommId,
    /// `None` = `MPI_ANY_SOURCE`.
    pub src: Option<u32>,
    /// `None` = `MPI_ANY_TAG`.
    pub tag: Option<u64>,
}

impl Matcher {
    fn matches(&self, m: &MpiMsg) -> bool {
        m.comm == self.comm
            && self.src.is_none_or(|s| s == m.src_rank)
            && self.tag.is_none_or(|t| t == m.tag)
    }
}

impl MsgStore {
    /// Push a delivered message and wake blocked receivers.
    ///
    /// Matching priority: posted receives (lowest [`ReqId`] first), then
    /// cancel drains, then the unexpected-message queue. Posted-before-drain
    /// matters under retries: the Optimized transport's tags are
    /// content-addressed, so an original body and its resend are
    /// interchangeable — whichever arrives first completes the live posted
    /// receive, and the drain left by the timed-out attempt absorbs the
    /// duplicate.
    pub fn push(&self, msg: MpiMsg) {
        let waiters = {
            let mut s = self.state.lock();
            if s.closed {
                return;
            }
            let posted_hit = s
                .posted
                .iter()
                .find(|(_, p)| matches!(p.state, PostState::Pending) && p.matcher.matches(&msg))
                .map(|(id, _)| *id);
            if let Some(id) = posted_hit {
                let seq = s.next_completion;
                s.next_completion += 1;
                s.posted.get_mut(&id).expect("slot exists").state = PostState::Ready { msg, seq };
                std::mem::take(&mut s.waiters)
            } else if let Some(dm) = s.drains.keys().find(|matcher| matcher.matches(&msg)).copied()
            {
                let count = s.drains.get_mut(&dm).expect("drain exists");
                *count -= 1;
                if *count == 0 {
                    s.drains.remove(&dm);
                }
                return; // absorbed: a cancelled receive already paid for it
            } else {
                s.msgs.push(msg);
                std::mem::take(&mut s.waiters)
            }
        };
        for w in waiters {
            w.wake();
        }
    }

    /// Post a nonblocking receive. If a stored message already matches, it
    /// is pinned to the slot immediately (FIFO among matching messages, the
    /// same order `recv` would use).
    pub fn post_recv(&self, m: Matcher) -> ReqId {
        let mut s = self.state.lock();
        let id = s.next_req;
        s.next_req += 1;
        let state = if let Some(pos) = s.msgs.iter().position(|x| m.matches(x)) {
            let msg = s.msgs.remove(pos);
            let seq = s.next_completion;
            s.next_completion += 1;
            PostState::Ready { msg, seq }
        } else {
            PostState::Pending
        };
        s.posted.insert(id, PostedRecv { matcher: m, state });
        ReqId(id)
    }

    /// True when the posted receive has matched (without consuming it).
    pub fn req_test(&self, id: ReqId) -> bool {
        let s = self.state.lock();
        s.posted.get(&id.0).is_none_or(|p| matches!(p.state, PostState::Ready { .. }))
    }

    /// Completion sequence number of a matched posted receive (arrival
    /// order), `None` while pending.
    pub fn req_completion_seq(&self, id: ReqId) -> Option<u64> {
        let s = self.state.lock();
        match s.posted.get(&id.0)?.state {
            PostState::Ready { seq, .. } => Some(seq),
            PostState::Pending => None,
        }
    }

    /// Take the message of a matched posted receive, if ready.
    pub fn req_try_take(&self, id: ReqId) -> Option<MpiMsg> {
        let mut s = self.state.lock();
        if !matches!(s.posted.get(&id.0)?.state, PostState::Ready { .. }) {
            return None;
        }
        match s.posted.remove(&id.0).expect("slot exists").state {
            PostState::Ready { msg, .. } => Some(msg),
            PostState::Pending => unreachable!("checked ready above"),
        }
    }

    /// Block until the posted receive completes; consumes the slot.
    pub fn req_wait(&self, id: ReqId) -> Result<MpiMsg, MpiError> {
        loop {
            {
                let mut s = self.state.lock();
                match s.posted.get(&id.0) {
                    None => panic!("request {id:?} waited twice"),
                    Some(p) if matches!(p.state, PostState::Ready { .. }) => {
                        match s.posted.remove(&id.0).expect("slot exists").state {
                            PostState::Ready { msg, .. } => return Ok(msg),
                            PostState::Pending => unreachable!("checked ready above"),
                        }
                    }
                    Some(_) if s.closed => {
                        s.posted.remove(&id.0);
                        return Err(MpiError::Finalized);
                    }
                    Some(_) => {}
                }
                s.waiters.push(wait_token());
            }
            park();
        }
    }

    /// [`req_wait`](MsgStore::req_wait) with an absolute deadline. On
    /// timeout the slot is left posted — the caller decides whether to
    /// cancel (and drain) or keep waiting.
    pub fn req_wait_deadline(&self, id: ReqId, deadline: u64) -> Result<MpiMsg, MpiError> {
        loop {
            let tok = {
                let mut s = self.state.lock();
                match s.posted.get(&id.0) {
                    None => panic!("request {id:?} waited twice"),
                    Some(p) if matches!(p.state, PostState::Ready { .. }) => {
                        match s.posted.remove(&id.0).expect("slot exists").state {
                            PostState::Ready { msg, .. } => return Ok(msg),
                            PostState::Pending => unreachable!("checked ready above"),
                        }
                    }
                    Some(_) if s.closed => {
                        s.posted.remove(&id.0);
                        return Err(MpiError::Finalized);
                    }
                    Some(_) => {}
                }
                if simt::now() >= deadline {
                    return Err(MpiError::Timeout);
                }
                let tok = wait_token();
                s.waiters.push(tok.clone());
                tok
            };
            tok.wake_at(deadline);
            park();
        }
    }

    /// Remove a posted receive. A pinned (already matched) message is
    /// dropped with the slot. With `drain` set, a still-pending slot leaves
    /// a one-shot absorber behind so the message it was waiting for is
    /// dropped on arrival instead of sitting in the unexpected queue forever
    /// — the cancelled receive's match is consumed either way.
    pub fn cancel_recv(&self, id: ReqId, drain: bool) {
        let mut s = self.state.lock();
        let Some(p) = s.posted.remove(&id.0) else {
            return;
        };
        if drain && matches!(p.state, PostState::Pending) {
            *s.drains.entry(p.matcher).or_insert(0) += 1;
        }
    }

    /// Number of posted (uncompleted or unconsumed) receive slots.
    pub fn posted_len(&self) -> usize {
        self.state.lock().posted.len()
    }

    /// Total count of outstanding cancel drains.
    pub fn drain_len(&self) -> usize {
        self.state.lock().drains.values().map(|c| *c as usize).sum()
    }

    /// True once [`close`](MsgStore::close) ran.
    pub fn is_closed(&self) -> bool {
        self.state.lock().closed
    }

    /// Two handles to the same underlying store?
    pub fn same_store(&self, other: &MsgStore) -> bool {
        Arc::ptr_eq(&self.state, &other.state)
    }

    /// Register a waiter woken at the next push/close (used by batched
    /// waits; tokens are one-shot and stale wakes are rejected by epoch).
    pub(crate) fn add_waiter(&self, tok: WaitToken) {
        self.state.lock().waiters.push(tok);
    }

    /// Among `ids`, take the ready slot with the earliest completion
    /// sequence (arrival order), if any.
    pub(crate) fn take_earliest_ready(&self, ids: &[ReqId]) -> Option<(ReqId, MpiMsg)> {
        let mut s = self.state.lock();
        let best = ids
            .iter()
            .filter_map(|id| match s.posted.get(&id.0)?.state {
                PostState::Ready { seq, .. } => Some((seq, *id)),
                PostState::Pending => None,
            })
            .min()?;
        match s.posted.remove(&best.1 .0).expect("slot exists").state {
            PostState::Ready { msg, .. } => Some((best.1, msg)),
            PostState::Pending => unreachable!("checked ready above"),
        }
    }

    /// Blocking matched receive (FIFO among matching messages).
    pub fn recv(&self, m: Matcher) -> Result<MpiMsg, MpiError> {
        loop {
            {
                let mut s = self.state.lock();
                if let Some(pos) = s.msgs.iter().position(|x| m.matches(x)) {
                    return Ok(s.msgs.remove(pos));
                }
                if s.closed {
                    return Err(MpiError::Finalized);
                }
                s.waiters.push(wait_token());
            }
            park();
        }
    }

    /// Blocking matched receive with a relative timeout.
    pub fn recv_timeout(&self, m: Matcher, timeout: u64) -> Result<MpiMsg, MpiError> {
        let deadline = simt::now().saturating_add(timeout);
        loop {
            let tok = {
                let mut s = self.state.lock();
                if let Some(pos) = s.msgs.iter().position(|x| m.matches(x)) {
                    return Ok(s.msgs.remove(pos));
                }
                if s.closed {
                    return Err(MpiError::Finalized);
                }
                if simt::now() >= deadline {
                    return Err(MpiError::Timeout);
                }
                let tok = wait_token();
                s.waiters.push(tok.clone());
                tok
            };
            tok.wake_at(deadline);
            park();
        }
    }

    /// Non-blocking probe: status of the first matching message, if any.
    pub fn probe(&self, m: Matcher) -> Option<Status> {
        let s = self.state.lock();
        s.msgs.iter().find(|x| m.matches(x)).map(|x| Status {
            source: x.src_rank,
            tag: x.tag,
            len: x.payload.virtual_len,
        })
    }

    /// Blocking probe.
    pub fn probe_blocking(&self, m: Matcher) -> Result<Status, MpiError> {
        loop {
            {
                let mut s = self.state.lock();
                if let Some(x) = s.msgs.iter().find(|x| m.matches(x)) {
                    return Ok(Status {
                        source: x.src_rank,
                        tag: x.tag,
                        len: x.payload.virtual_len,
                    });
                }
                if s.closed {
                    return Err(MpiError::Finalized);
                }
                s.waiters.push(wait_token());
            }
            park();
        }
    }

    /// Blocking receive matching only on `tag`, across all communicators.
    /// Used solely by the intercomm-merge bootstrap, where the receiver
    /// cannot yet know the new communicator's id.
    pub fn recv_any_comm(&self, tag: u64) -> Result<MpiMsg, MpiError> {
        loop {
            {
                let mut s = self.state.lock();
                if let Some(pos) = s.msgs.iter().position(|x| x.tag == tag) {
                    return Ok(s.msgs.remove(pos));
                }
                if s.closed {
                    return Err(MpiError::Finalized);
                }
                s.waiters.push(wait_token());
            }
            park();
        }
    }

    /// Stop accepting messages and wake everyone (they observe `Finalized`).
    pub fn close(&self) {
        let waiters = {
            let mut s = self.state.lock();
            s.closed = true;
            std::mem::take(&mut s.waiters)
        };
        for w in waiters {
            w.wake();
        }
    }

    /// Number of stored (unreceived) messages.
    pub fn len(&self) -> usize {
        self.state.lock().msgs.len()
    }

    /// True when no messages are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Outcome of one [`CompletionSet::wait_next`] sweep.
#[derive(Debug)]
pub enum Completed {
    /// A posted receive finished. `user` is the token passed to
    /// [`crate::Request::attach`].
    Recv {
        /// Caller-chosen identifier of the completed receive.
        user: u64,
        /// The matched message.
        msg: MpiMsg,
    },
    /// The deadline passed before any completion.
    TimedOut,
    /// The store closed (process finalized) with receives still pending.
    Closed,
}

struct CompletionInner {
    /// Bound on first attach; all members must share one process store.
    store: Option<MsgStore>,
    /// Posted receive id → caller token.
    pending: BTreeMap<ReqId, u64>,
    /// Waiters to wake when a new request is attached.
    tokens: Vec<WaitToken>,
}

/// A per-process completion queue: a set of posted receives completed in
/// *arrival order* with one sweep per wake-up, rather than N independent
/// iprobe polls. Waits are event-driven (woken by message arrival or by a
/// new attach), so blocking in `wait_next` charges no polling CPU.
///
/// Used by the Optimized transport's body pump: the endpoint event loop
/// attaches one receive per parsed shuffle header and the pump thread
/// completes whichever body lands first.
#[derive(Clone)]
pub struct CompletionSet {
    inner: Arc<Mutex<CompletionInner>>,
}

impl Default for CompletionSet {
    fn default() -> Self {
        Self::new()
    }
}

impl CompletionSet {
    /// An empty set.
    pub fn new() -> CompletionSet {
        CompletionSet {
            inner: Arc::new(Mutex::new(CompletionInner {
                store: None,
                pending: BTreeMap::new(),
                tokens: Vec::new(),
            })),
        }
    }

    /// Add a posted receive under caller token `user` and wake any blocked
    /// `wait_next`. (Reached through [`crate::Request::attach`].)
    pub(crate) fn add(&self, store: &MsgStore, id: ReqId, user: u64) {
        let tokens = {
            let mut cs = self.inner.lock();
            match &cs.store {
                None => cs.store = Some(store.clone()),
                Some(s) => {
                    assert!(s.same_store(store), "CompletionSet spans a single process store")
                }
            }
            cs.pending.insert(id, user);
            std::mem::take(&mut cs.tokens)
        };
        for t in tokens {
            t.wake();
        }
    }

    /// Cancel the pending receive attached under `user`, leaving a drain
    /// absorber behind (see [`MsgStore::cancel_recv`]). Returns false when
    /// no such entry exists (already completed).
    pub fn cancel_user(&self, user: u64) -> bool {
        let removed = {
            let mut cs = self.inner.lock();
            let id = cs.pending.iter().find(|(_, u)| **u == user).map(|(id, _)| *id);
            id.map(|id| {
                cs.pending.remove(&id);
                (id, cs.store.clone())
            })
        };
        match removed {
            Some((id, Some(store))) => {
                store.cancel_recv(id, true);
                true
            }
            _ => false,
        }
    }

    /// Number of receives still pending completion or consumption.
    pub fn len(&self) -> usize {
        self.inner.lock().pending.len()
    }

    /// True when no receives are attached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Block until the earliest-arrived member completes, the optional
    /// absolute `deadline` passes, or the store closes. One sweep over the
    /// set per wake-up; completion choice is arrival order (virtual time),
    /// so it is replay-deterministic.
    pub fn wait_next(&self, deadline: Option<u64>) -> Completed {
        loop {
            // Register the token *before* sweeping so an attach or arrival
            // between the sweep and `park` still wakes us (stale tokens are
            // rejected by epoch).
            let tok = wait_token();
            let (store, ids) = {
                let mut cs = self.inner.lock();
                cs.tokens.push(tok.clone());
                (cs.store.clone(), cs.pending.keys().copied().collect::<Vec<_>>())
            };
            if let Some(store) = &store {
                store.add_waiter(tok.clone());
                if let Some((id, msg)) = store.take_earliest_ready(&ids) {
                    let user =
                        self.inner.lock().pending.remove(&id).expect("completed id is a member");
                    return Completed::Recv { user, msg };
                }
                if store.is_closed() && !ids.is_empty() {
                    return Completed::Closed;
                }
            }
            if let Some(d) = deadline {
                if simt::now() >= d {
                    return Completed::TimedOut;
                }
                tok.wake_at(d);
            }
            park();
        }
    }
}

/// Registry entry for one MPI process.
pub struct ProcState {
    /// Identifier.
    pub id: ProcId,
    /// Node the process runs on.
    pub node: NodeId,
    /// Mailbox address other processes send to.
    pub mailbox: PortAddr,
    /// The matching store.
    pub store: MsgStore,
    /// Per-communicator collective sequence numbers (tags for collective
    /// rounds; one collective at a time per communicator, as MPI requires).
    pub coll_seq: Mutex<BTreeMap<CommId, u64>>,
}

/// Spawn the progress pump for a process: drains its mailbox port into the
/// store until the port closes. The pump charges receive-side CPU (the MPI
/// progress engine's cost) as packets arrive.
pub fn spawn_pump(name: &str, rx: fabric::net::PortRx, store: MsgStore) {
    let label = format!("mpi-pump:{name}");
    simt::spawn_daemon(label, move || {
        while let Ok(pkt) = rx.recv() {
            if let Some(msg) = pkt.payload.value_as::<MpiMsg>() {
                store.push((*msg).clone());
            }
        }
        store.close();
    });
}

/// The `Net` + process/communicator registries shared by all handles of one
/// MPI universe. (Exposed for sibling modules; users interact through
/// [`crate::Universe`] and [`crate::Comm`].)
pub struct UniverseState {
    /// The fabric.
    pub net: Net,
    /// Software stack for all MPI traffic.
    pub stack: fabric::StackModel,
    /// Registered processes.
    pub procs: Mutex<BTreeMap<ProcId, Arc<ProcState>>>,
    /// Registered communicators.
    pub comms: Mutex<BTreeMap<CommId, Arc<CommInfo>>>,
    /// `proc -> parent intercommunicator` (set by DPM spawn).
    pub parents: Mutex<BTreeMap<ProcId, CommId>>,
    /// Named ports for `comm_accept`/`comm_connect`.
    pub named_ports: Mutex<BTreeMap<String, simt::queue::Queue<crate::connect::ConnRequest>>>,
    /// Next ids.
    pub next_proc: std::sync::atomic::AtomicU64,
    /// Next communicator id.
    pub next_comm: std::sync::atomic::AtomicU64,
}

/// Group structure of a communicator.
pub enum CommGroups {
    /// Intracommunicator: one group; index = rank.
    Intra(Vec<ProcId>),
    /// Intercommunicator: two groups; ranks address the remote group.
    Inter {
        /// Group A (e.g. the DPM parents).
        a: Vec<ProcId>,
        /// Group B (e.g. the DPM children).
        b: Vec<ProcId>,
    },
}

/// A communicator's registry entry.
pub struct CommInfo {
    /// Identifier.
    pub id: CommId,
    /// Membership.
    pub groups: CommGroups,
}

impl CommInfo {
    /// Rank of `p` within the group it belongs to, if a member.
    pub fn local_rank(&self, p: ProcId) -> Option<u32> {
        match &self.groups {
            CommGroups::Intra(g) => g.iter().position(|x| *x == p).map(|i| i as u32),
            CommGroups::Inter { a, b } => a
                .iter()
                .position(|x| *x == p)
                .or_else(|| b.iter().position(|x| *x == p))
                .map(|i| i as u32),
        }
    }

    /// The process a send to rank `r` targets, from `sender`'s perspective.
    pub fn resolve_dest(&self, sender: ProcId, r: u32) -> Result<ProcId, MpiError> {
        match &self.groups {
            CommGroups::Intra(g) => g.get(r as usize).copied().ok_or(MpiError::InvalidRank(r)),
            CommGroups::Inter { a, b } => {
                // Sends address the remote group.
                if a.contains(&sender) {
                    b.get(r as usize).copied().ok_or(MpiError::InvalidRank(r))
                } else if b.contains(&sender) {
                    a.get(r as usize).copied().ok_or(MpiError::InvalidRank(r))
                } else {
                    Err(MpiError::NotAMember)
                }
            }
        }
    }

    /// Size of the group containing `p` (local size).
    pub fn local_size(&self, p: ProcId) -> usize {
        match &self.groups {
            CommGroups::Intra(g) => g.len(),
            CommGroups::Inter { a, b } => {
                if a.contains(&p) {
                    a.len()
                } else {
                    b.len()
                }
            }
        }
    }

    /// Size of the remote group (intercomm) or the group itself (intracomm).
    pub fn remote_size(&self, p: ProcId) -> usize {
        match &self.groups {
            CommGroups::Intra(g) => g.len(),
            CommGroups::Inter { a, b } => {
                if a.contains(&p) {
                    b.len()
                } else {
                    a.len()
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn msg(comm: u64, src: u32, tag: u64) -> MpiMsg {
        MpiMsg {
            comm: CommId(comm),
            src_rank: src,
            tag,
            payload: Payload::bytes(Bytes::from_static(b"d")),
        }
    }

    #[test]
    fn store_matches_exact_and_wildcards() {
        let sim = simt::Sim::new();
        sim.spawn("t", || {
            let store = MsgStore::default();
            store.push(msg(1, 0, 10));
            store.push(msg(1, 1, 11));
            store.push(msg(2, 0, 10));
            // Exact match takes the matching one, not FIFO head.
            let got = store.recv(Matcher { comm: CommId(1), src: Some(1), tag: Some(11) }).unwrap();
            assert_eq!(got.src_rank, 1);
            // Wildcard source.
            let got = store.recv(Matcher { comm: CommId(1), src: None, tag: Some(10) }).unwrap();
            assert_eq!((got.src_rank, got.tag), (0, 10));
            // Wildcard both — only comm 2 left.
            let got = store.recv(Matcher { comm: CommId(2), src: None, tag: None }).unwrap();
            assert_eq!(got.comm, CommId(2));
            assert!(store.is_empty());
        });
        sim.run().unwrap().assert_clean();
    }

    #[test]
    fn recv_blocks_until_push() {
        let sim = simt::Sim::new();
        let store = MsgStore::default();
        let s2 = store.clone();
        sim.spawn("rx", move || {
            let got = s2.recv(Matcher { comm: CommId(1), src: Some(0), tag: Some(5) }).unwrap();
            assert_eq!(got.tag, 5);
            assert_eq!(simt::now(), 100);
        });
        sim.spawn("tx", move || {
            simt::sleep(100);
            store.push(msg(1, 0, 5));
        });
        sim.run().unwrap().assert_clean();
    }

    #[test]
    fn probe_does_not_consume() {
        let sim = simt::Sim::new();
        sim.spawn("t", || {
            let store = MsgStore::default();
            store.push(msg(1, 3, 7));
            let m = Matcher { comm: CommId(1), src: None, tag: None };
            let st = store.probe(m).unwrap();
            assert_eq!((st.source, st.tag), (3, 7));
            assert_eq!(store.len(), 1);
            assert!(store.recv(m).is_ok());
        });
        sim.run().unwrap().assert_clean();
    }

    #[test]
    fn recv_timeout_expires() {
        let sim = simt::Sim::new();
        sim.spawn("t", || {
            let store = MsgStore::default();
            let r = store.recv_timeout(Matcher { comm: CommId(1), src: None, tag: None }, 1_000);
            assert_eq!(r.err(), Some(MpiError::Timeout));
            assert_eq!(simt::now(), 1_000);
        });
        sim.run().unwrap().assert_clean();
    }

    #[test]
    fn close_wakes_receivers_with_finalized() {
        let sim = simt::Sim::new();
        let store = MsgStore::default();
        let s2 = store.clone();
        sim.spawn("rx", move || {
            let r = s2.recv(Matcher { comm: CommId(1), src: None, tag: None });
            assert_eq!(r.err(), Some(MpiError::Finalized));
        });
        sim.spawn("closer", move || {
            simt::sleep(10);
            store.close();
        });
        sim.run().unwrap().assert_clean();
    }

    #[test]
    fn posted_recv_pins_stored_message() {
        let sim = simt::Sim::new();
        sim.spawn("t", || {
            let store = MsgStore::default();
            store.push(msg(1, 0, 10));
            // Posting pins the stored message: recv can no longer see it.
            let id = store.post_recv(Matcher { comm: CommId(1), src: None, tag: Some(10) });
            assert!(store.req_test(id));
            assert!(store.is_empty());
            let r =
                store.recv_timeout(Matcher { comm: CommId(1), src: Some(0), tag: Some(10) }, 500);
            assert_eq!(r.err(), Some(MpiError::Timeout));
            let got = store.req_wait(id).unwrap();
            assert_eq!((got.src_rank, got.tag), (0, 10));
            assert_eq!(store.posted_len(), 0);
        });
        sim.run().unwrap().assert_clean();
    }

    #[test]
    fn posted_recvs_match_in_post_order() {
        let sim = simt::Sim::new();
        sim.spawn("t", || {
            let store = MsgStore::default();
            let a = store.post_recv(Matcher { comm: CommId(1), src: None, tag: None });
            let b = store.post_recv(Matcher { comm: CommId(1), src: None, tag: None });
            store.push(msg(1, 7, 1));
            assert!(store.req_test(a) && !store.req_test(b));
            store.push(msg(1, 8, 2));
            // Arrival order == completion-seq order.
            assert_eq!(store.req_completion_seq(a), Some(0));
            assert_eq!(store.req_completion_seq(b), Some(1));
            assert_eq!(store.req_wait(a).unwrap().src_rank, 7);
            assert_eq!(store.req_wait(b).unwrap().src_rank, 8);
        });
        sim.run().unwrap().assert_clean();
    }

    #[test]
    fn cancel_drain_absorbs_the_late_message() {
        let sim = simt::Sim::new();
        sim.spawn("t", || {
            let store = MsgStore::default();
            let id = store.post_recv(Matcher { comm: CommId(1), src: Some(0), tag: Some(9) });
            store.cancel_recv(id, true);
            assert_eq!((store.posted_len(), store.drain_len()), (0, 1));
            store.push(msg(1, 0, 9));
            // Absorbed, not stored; drain consumed.
            assert!(store.is_empty());
            assert_eq!(store.drain_len(), 0);
            // A second copy has no drain left and is stored normally.
            store.push(msg(1, 0, 9));
            assert_eq!(store.len(), 1);
        });
        sim.run().unwrap().assert_clean();
    }

    #[test]
    fn drains_do_not_eat_live_posted_recvs() {
        let sim = simt::Sim::new();
        sim.spawn("t", || {
            let store = MsgStore::default();
            let m = Matcher { comm: CommId(1), src: Some(0), tag: Some(9) };
            let stale = store.post_recv(m);
            store.cancel_recv(stale, true);
            // A retry posts the same content-addressed matcher.
            let retry = store.post_recv(m);
            // First body to land completes the live receive, not the drain.
            store.push(msg(1, 0, 9));
            assert!(store.req_test(retry));
            // The duplicate is absorbed by the drain.
            store.push(msg(1, 0, 9));
            assert!(store.is_empty());
            assert_eq!(store.drain_len(), 0);
            assert!(store.req_wait(retry).is_ok());
        });
        sim.run().unwrap().assert_clean();
    }

    #[test]
    fn completion_set_yields_arrival_order_and_times_out() {
        let sim = simt::Sim::new();
        let store = MsgStore::default();
        let set = CompletionSet::new();
        let (s2, set2) = (store.clone(), set.clone());
        sim.spawn("waiter", move || {
            let a = s2.post_recv(Matcher { comm: CommId(1), src: None, tag: Some(1) });
            let b = s2.post_recv(Matcher { comm: CommId(1), src: None, tag: Some(2) });
            set2.add(&s2, a, 100);
            set2.add(&s2, b, 200);
            // Tag 2 arrives first: completion order is arrival order, not
            // attach order.
            match set2.wait_next(None) {
                Completed::Recv { user, msg } => {
                    assert_eq!((user, msg.tag), (200, 2));
                }
                other => panic!("unexpected: {other:?}"),
            }
            match set2.wait_next(Some(simt::now() + 500)) {
                Completed::TimedOut => assert_eq!(simt::now(), 10_500),
                other => panic!("unexpected: {other:?}"),
            }
            match set2.wait_next(None) {
                Completed::Recv { user, .. } => assert_eq!(user, 100),
                other => panic!("unexpected: {other:?}"),
            }
            assert!(set2.is_empty());
        });
        sim.spawn("sender", move || {
            simt::sleep(10_000);
            store.push(msg(1, 0, 2));
            simt::sleep(10_000);
            store.push(msg(1, 0, 1));
        });
        sim.run().unwrap().assert_clean();
    }

    #[test]
    fn comm_info_intra_ranks() {
        let info = CommInfo {
            id: CommId(1),
            groups: CommGroups::Intra(vec![ProcId(10), ProcId(20), ProcId(30)]),
        };
        assert_eq!(info.local_rank(ProcId(20)), Some(1));
        assert_eq!(info.local_rank(ProcId(99)), None);
        assert_eq!(info.resolve_dest(ProcId(10), 2).unwrap(), ProcId(30));
        assert_eq!(info.resolve_dest(ProcId(10), 7).unwrap_err(), MpiError::InvalidRank(7));
        assert_eq!(info.local_size(ProcId(10)), 3);
    }

    #[test]
    fn comm_info_inter_ranks_address_remote_group() {
        let info = CommInfo {
            id: CommId(2),
            groups: CommGroups::Inter { a: vec![ProcId(1), ProcId(2)], b: vec![ProcId(3)] },
        };
        // Parent 1 sending to rank 0 reaches child 3.
        assert_eq!(info.resolve_dest(ProcId(1), 0).unwrap(), ProcId(3));
        // Child 3 sending to rank 1 reaches parent 2.
        assert_eq!(info.resolve_dest(ProcId(3), 1).unwrap(), ProcId(2));
        assert_eq!(info.remote_size(ProcId(1)), 1);
        assert_eq!(info.remote_size(ProcId(3)), 2);
        assert_eq!(info.resolve_dest(ProcId(99), 0).unwrap_err(), MpiError::NotAMember);
    }
}
