//! Per-process receive machinery: the unexpected-message queue and the
//! progress pump.
//!
//! Every MPI process owns one fabric mailbox port. A daemon *pump* green
//! thread (the analog of an MPI progress engine) drains the port into a
//! [`MsgStore`], where blocking receives match on `(communicator, source,
//! tag)` — messages that arrive before a matching receive wait in the store,
//! exactly like MPI's unexpected message queue.

use std::collections::BTreeMap;
use std::sync::Arc;

use fabric::{Net, NodeId, Payload, PortAddr};
use parking_lot::Mutex;
use simt::engine::{park, wait_token, WaitToken};

use crate::types::{CommId, MpiError, ProcId, Status};

/// CPU cost of one `iprobe` sweep (paper §VI-D: the Basic design's polling
/// primitive; "too compute-intensive" when spun in a selector loop).
pub const IPROBE_CPU_NS: u64 = 300;

/// An in-flight or stored MPI message.
#[derive(Debug, Clone)]
pub struct MpiMsg {
    /// Communicator the message was sent on.
    pub comm: CommId,
    /// Sender's rank as visible to the receiver (remote-group rank for
    /// intercommunicators).
    pub src_rank: u32,
    /// Message tag.
    pub tag: u64,
    /// User payload.
    pub payload: Payload,
}

#[derive(Default)]
struct StoreState {
    msgs: Vec<MpiMsg>,
    waiters: Vec<WaitToken>,
    closed: bool,
}

/// The unexpected-message queue plus waiter bookkeeping.
#[derive(Clone, Default)]
pub struct MsgStore {
    state: Arc<Mutex<StoreState>>,
}

/// A match predicate: communicator, optional source rank, optional tag.
#[derive(Debug, Clone, Copy)]
pub struct Matcher {
    /// Communicator to match.
    pub comm: CommId,
    /// `None` = `MPI_ANY_SOURCE`.
    pub src: Option<u32>,
    /// `None` = `MPI_ANY_TAG`.
    pub tag: Option<u64>,
}

impl Matcher {
    fn matches(&self, m: &MpiMsg) -> bool {
        m.comm == self.comm
            && self.src.is_none_or(|s| s == m.src_rank)
            && self.tag.is_none_or(|t| t == m.tag)
    }
}

impl MsgStore {
    /// Push a delivered message and wake blocked receivers.
    pub fn push(&self, msg: MpiMsg) {
        let waiters = {
            let mut s = self.state.lock();
            if s.closed {
                return;
            }
            s.msgs.push(msg);
            std::mem::take(&mut s.waiters)
        };
        for w in waiters {
            w.wake();
        }
    }

    /// Blocking matched receive (FIFO among matching messages).
    pub fn recv(&self, m: Matcher) -> Result<MpiMsg, MpiError> {
        loop {
            {
                let mut s = self.state.lock();
                if let Some(pos) = s.msgs.iter().position(|x| m.matches(x)) {
                    return Ok(s.msgs.remove(pos));
                }
                if s.closed {
                    return Err(MpiError::Finalized);
                }
                s.waiters.push(wait_token());
            }
            park();
        }
    }

    /// Blocking matched receive with a relative timeout.
    pub fn recv_timeout(&self, m: Matcher, timeout: u64) -> Result<MpiMsg, MpiError> {
        let deadline = simt::now().saturating_add(timeout);
        loop {
            let tok = {
                let mut s = self.state.lock();
                if let Some(pos) = s.msgs.iter().position(|x| m.matches(x)) {
                    return Ok(s.msgs.remove(pos));
                }
                if s.closed {
                    return Err(MpiError::Finalized);
                }
                if simt::now() >= deadline {
                    return Err(MpiError::Timeout);
                }
                let tok = wait_token();
                s.waiters.push(tok.clone());
                tok
            };
            tok.wake_at(deadline);
            park();
        }
    }

    /// Non-blocking probe: status of the first matching message, if any.
    pub fn probe(&self, m: Matcher) -> Option<Status> {
        let s = self.state.lock();
        s.msgs.iter().find(|x| m.matches(x)).map(|x| Status {
            source: x.src_rank,
            tag: x.tag,
            len: x.payload.virtual_len,
        })
    }

    /// Blocking probe.
    pub fn probe_blocking(&self, m: Matcher) -> Result<Status, MpiError> {
        loop {
            {
                let mut s = self.state.lock();
                if let Some(x) = s.msgs.iter().find(|x| m.matches(x)) {
                    return Ok(Status {
                        source: x.src_rank,
                        tag: x.tag,
                        len: x.payload.virtual_len,
                    });
                }
                if s.closed {
                    return Err(MpiError::Finalized);
                }
                s.waiters.push(wait_token());
            }
            park();
        }
    }

    /// Blocking receive matching only on `tag`, across all communicators.
    /// Used solely by the intercomm-merge bootstrap, where the receiver
    /// cannot yet know the new communicator's id.
    pub fn recv_any_comm(&self, tag: u64) -> Result<MpiMsg, MpiError> {
        loop {
            {
                let mut s = self.state.lock();
                if let Some(pos) = s.msgs.iter().position(|x| x.tag == tag) {
                    return Ok(s.msgs.remove(pos));
                }
                if s.closed {
                    return Err(MpiError::Finalized);
                }
                s.waiters.push(wait_token());
            }
            park();
        }
    }

    /// Stop accepting messages and wake everyone (they observe `Finalized`).
    pub fn close(&self) {
        let waiters = {
            let mut s = self.state.lock();
            s.closed = true;
            std::mem::take(&mut s.waiters)
        };
        for w in waiters {
            w.wake();
        }
    }

    /// Number of stored (unreceived) messages.
    pub fn len(&self) -> usize {
        self.state.lock().msgs.len()
    }

    /// True when no messages are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Registry entry for one MPI process.
pub struct ProcState {
    /// Identifier.
    pub id: ProcId,
    /// Node the process runs on.
    pub node: NodeId,
    /// Mailbox address other processes send to.
    pub mailbox: PortAddr,
    /// The matching store.
    pub store: MsgStore,
    /// Per-communicator collective sequence numbers (tags for collective
    /// rounds; one collective at a time per communicator, as MPI requires).
    pub coll_seq: Mutex<BTreeMap<CommId, u64>>,
}

/// Spawn the progress pump for a process: drains its mailbox port into the
/// store until the port closes. The pump charges receive-side CPU (the MPI
/// progress engine's cost) as packets arrive.
pub fn spawn_pump(name: &str, rx: fabric::net::PortRx, store: MsgStore) {
    let label = format!("mpi-pump:{name}");
    simt::spawn_daemon(label, move || {
        while let Ok(pkt) = rx.recv() {
            if let Some(msg) = pkt.payload.value_as::<MpiMsg>() {
                store.push((*msg).clone());
            }
        }
        store.close();
    });
}

/// The `Net` + process/communicator registries shared by all handles of one
/// MPI universe. (Exposed for sibling modules; users interact through
/// [`crate::Universe`] and [`crate::Comm`].)
pub struct UniverseState {
    /// The fabric.
    pub net: Net,
    /// Software stack for all MPI traffic.
    pub stack: fabric::StackModel,
    /// Registered processes.
    pub procs: Mutex<BTreeMap<ProcId, Arc<ProcState>>>,
    /// Registered communicators.
    pub comms: Mutex<BTreeMap<CommId, Arc<CommInfo>>>,
    /// `proc -> parent intercommunicator` (set by DPM spawn).
    pub parents: Mutex<BTreeMap<ProcId, CommId>>,
    /// Named ports for `comm_accept`/`comm_connect`.
    pub named_ports: Mutex<BTreeMap<String, simt::queue::Queue<crate::connect::ConnRequest>>>,
    /// Next ids.
    pub next_proc: std::sync::atomic::AtomicU64,
    /// Next communicator id.
    pub next_comm: std::sync::atomic::AtomicU64,
}

/// Group structure of a communicator.
pub enum CommGroups {
    /// Intracommunicator: one group; index = rank.
    Intra(Vec<ProcId>),
    /// Intercommunicator: two groups; ranks address the remote group.
    Inter {
        /// Group A (e.g. the DPM parents).
        a: Vec<ProcId>,
        /// Group B (e.g. the DPM children).
        b: Vec<ProcId>,
    },
}

/// A communicator's registry entry.
pub struct CommInfo {
    /// Identifier.
    pub id: CommId,
    /// Membership.
    pub groups: CommGroups,
}

impl CommInfo {
    /// Rank of `p` within the group it belongs to, if a member.
    pub fn local_rank(&self, p: ProcId) -> Option<u32> {
        match &self.groups {
            CommGroups::Intra(g) => g.iter().position(|x| *x == p).map(|i| i as u32),
            CommGroups::Inter { a, b } => a
                .iter()
                .position(|x| *x == p)
                .or_else(|| b.iter().position(|x| *x == p))
                .map(|i| i as u32),
        }
    }

    /// The process a send to rank `r` targets, from `sender`'s perspective.
    pub fn resolve_dest(&self, sender: ProcId, r: u32) -> Result<ProcId, MpiError> {
        match &self.groups {
            CommGroups::Intra(g) => g.get(r as usize).copied().ok_or(MpiError::InvalidRank(r)),
            CommGroups::Inter { a, b } => {
                // Sends address the remote group.
                if a.contains(&sender) {
                    b.get(r as usize).copied().ok_or(MpiError::InvalidRank(r))
                } else if b.contains(&sender) {
                    a.get(r as usize).copied().ok_or(MpiError::InvalidRank(r))
                } else {
                    Err(MpiError::NotAMember)
                }
            }
        }
    }

    /// Size of the group containing `p` (local size).
    pub fn local_size(&self, p: ProcId) -> usize {
        match &self.groups {
            CommGroups::Intra(g) => g.len(),
            CommGroups::Inter { a, b } => {
                if a.contains(&p) {
                    a.len()
                } else {
                    b.len()
                }
            }
        }
    }

    /// Size of the remote group (intercomm) or the group itself (intracomm).
    pub fn remote_size(&self, p: ProcId) -> usize {
        match &self.groups {
            CommGroups::Intra(g) => g.len(),
            CommGroups::Inter { a, b } => {
                if a.contains(&p) {
                    b.len()
                } else {
                    a.len()
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn msg(comm: u64, src: u32, tag: u64) -> MpiMsg {
        MpiMsg {
            comm: CommId(comm),
            src_rank: src,
            tag,
            payload: Payload::bytes(Bytes::from_static(b"d")),
        }
    }

    #[test]
    fn store_matches_exact_and_wildcards() {
        let sim = simt::Sim::new();
        sim.spawn("t", || {
            let store = MsgStore::default();
            store.push(msg(1, 0, 10));
            store.push(msg(1, 1, 11));
            store.push(msg(2, 0, 10));
            // Exact match takes the matching one, not FIFO head.
            let got = store.recv(Matcher { comm: CommId(1), src: Some(1), tag: Some(11) }).unwrap();
            assert_eq!(got.src_rank, 1);
            // Wildcard source.
            let got = store.recv(Matcher { comm: CommId(1), src: None, tag: Some(10) }).unwrap();
            assert_eq!((got.src_rank, got.tag), (0, 10));
            // Wildcard both — only comm 2 left.
            let got = store.recv(Matcher { comm: CommId(2), src: None, tag: None }).unwrap();
            assert_eq!(got.comm, CommId(2));
            assert!(store.is_empty());
        });
        sim.run().unwrap().assert_clean();
    }

    #[test]
    fn recv_blocks_until_push() {
        let sim = simt::Sim::new();
        let store = MsgStore::default();
        let s2 = store.clone();
        sim.spawn("rx", move || {
            let got = s2.recv(Matcher { comm: CommId(1), src: Some(0), tag: Some(5) }).unwrap();
            assert_eq!(got.tag, 5);
            assert_eq!(simt::now(), 100);
        });
        sim.spawn("tx", move || {
            simt::sleep(100);
            store.push(msg(1, 0, 5));
        });
        sim.run().unwrap().assert_clean();
    }

    #[test]
    fn probe_does_not_consume() {
        let sim = simt::Sim::new();
        sim.spawn("t", || {
            let store = MsgStore::default();
            store.push(msg(1, 3, 7));
            let m = Matcher { comm: CommId(1), src: None, tag: None };
            let st = store.probe(m).unwrap();
            assert_eq!((st.source, st.tag), (3, 7));
            assert_eq!(store.len(), 1);
            assert!(store.recv(m).is_ok());
        });
        sim.run().unwrap().assert_clean();
    }

    #[test]
    fn recv_timeout_expires() {
        let sim = simt::Sim::new();
        sim.spawn("t", || {
            let store = MsgStore::default();
            let r = store.recv_timeout(Matcher { comm: CommId(1), src: None, tag: None }, 1_000);
            assert_eq!(r.err(), Some(MpiError::Timeout));
            assert_eq!(simt::now(), 1_000);
        });
        sim.run().unwrap().assert_clean();
    }

    #[test]
    fn close_wakes_receivers_with_finalized() {
        let sim = simt::Sim::new();
        let store = MsgStore::default();
        let s2 = store.clone();
        sim.spawn("rx", move || {
            let r = s2.recv(Matcher { comm: CommId(1), src: None, tag: None });
            assert_eq!(r.err(), Some(MpiError::Finalized));
        });
        sim.spawn("closer", move || {
            simt::sleep(10);
            store.close();
        });
        sim.run().unwrap().assert_clean();
    }

    #[test]
    fn comm_info_intra_ranks() {
        let info = CommInfo {
            id: CommId(1),
            groups: CommGroups::Intra(vec![ProcId(10), ProcId(20), ProcId(30)]),
        };
        assert_eq!(info.local_rank(ProcId(20)), Some(1));
        assert_eq!(info.local_rank(ProcId(99)), None);
        assert_eq!(info.resolve_dest(ProcId(10), 2).unwrap(), ProcId(30));
        assert_eq!(info.resolve_dest(ProcId(10), 7).unwrap_err(), MpiError::InvalidRank(7));
        assert_eq!(info.local_size(ProcId(10)), 3);
    }

    #[test]
    fn comm_info_inter_ranks_address_remote_group() {
        let info = CommInfo {
            id: CommId(2),
            groups: CommGroups::Inter { a: vec![ProcId(1), ProcId(2)], b: vec![ProcId(3)] },
        };
        // Parent 1 sending to rank 0 reaches child 3.
        assert_eq!(info.resolve_dest(ProcId(1), 0).unwrap(), ProcId(3));
        // Child 3 sending to rank 1 reaches parent 2.
        assert_eq!(info.resolve_dest(ProcId(3), 1).unwrap(), ProcId(2));
        assert_eq!(info.remote_size(ProcId(1)), 1);
        assert_eq!(info.remote_size(ProcId(3)), 2);
        assert_eq!(info.resolve_dest(ProcId(99), 0).unwrap_err(), MpiError::NotAMember);
    }
}
