//! Identifiers, wildcards, and errors.

/// Process identifier, unique within a [`crate::Universe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcId(pub u64);

/// Communicator identifier, unique within a [`crate::Universe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CommId(pub u64);

/// Wildcard source rank (`MPI_ANY_SOURCE`).
pub const ANY_SOURCE: Option<u32> = None;

/// Wildcard tag (`MPI_ANY_TAG`).
pub const ANY_TAG: Option<u64> = None;

/// Completion status of a receive or probe (`MPI_Status`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Status {
    /// Rank of the sender within the matched communicator('s remote group).
    pub source: u32,
    /// Tag of the matched message.
    pub tag: u64,
    /// Virtual byte count of the message.
    pub len: u64,
}

/// Errors surfaced by rmpi operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MpiError {
    /// Rank out of range for the communicator.
    InvalidRank(u32),
    /// The local process is not a member of the communicator.
    NotAMember,
    /// The process was finalized or the universe shut down.
    Finalized,
    /// A blocking call exceeded its deadline.
    Timeout,
    /// DPM spawn failed.
    SpawnFailed(String),
}

impl std::fmt::Display for MpiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MpiError::InvalidRank(r) => write!(f, "invalid rank {r}"),
            MpiError::NotAMember => f.write_str("calling process is not a communicator member"),
            MpiError::Finalized => f.write_str("process finalized"),
            MpiError::Timeout => f.write_str("operation timed out"),
            MpiError::SpawnFailed(m) => write!(f, "spawn failed: {m}"),
        }
    }
}

impl std::error::Error for MpiError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wildcards_are_none() {
        assert!(ANY_SOURCE.is_none());
        assert!(ANY_TAG.is_none());
    }

    #[test]
    fn error_display() {
        assert_eq!(MpiError::InvalidRank(9).to_string(), "invalid rank 9");
        assert_eq!(MpiError::Timeout.to_string(), "operation timed out");
    }
}
