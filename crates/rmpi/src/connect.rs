//! Dynamic connection establishment: `MPI_Open_port` / `MPI_Comm_accept` /
//! `MPI_Comm_connect`.
//!
//! The paper lists fault tolerance "using MPI_Comm_connect and
//! MPI_Comm_accept functionality" as future work (§IX); this module
//! provides the facility so the reconnect path can be built and tested: a
//! server process publishes a named port, a client connects by name, and
//! both obtain a fresh two-group intercommunicator.

use simt::queue::Queue;
use simt::sync::OnceCell;

use crate::comm::Comm;
use crate::proc::CommGroups;
use crate::types::{CommId, MpiError, ProcId};

/// A pending `comm_connect` awaiting its `comm_accept`.
pub struct ConnRequest {
    /// Connecting process.
    pub client: ProcId,
    /// Receives the new intercommunicator id.
    pub reply: OnceCell<CommId>,
}

impl Comm {
    /// Publish a named port (`MPI_Open_port`). Returns an error if the name
    /// is already in use.
    pub fn open_port(&self, name: &str) -> Result<(), MpiError> {
        let mut ports = self.universe().state.named_ports.lock();
        if ports.contains_key(name) {
            return Err(MpiError::SpawnFailed(format!("port '{name}' already open")));
        }
        ports.insert(name.to_string(), Queue::new());
        Ok(())
    }

    /// Remove a named port (`MPI_Close_port`).
    pub fn close_port(&self, name: &str) {
        if let Some(q) = self.universe().state.named_ports.lock().remove(name) {
            q.close();
        }
    }

    /// Accept one connection on a published port (`MPI_Comm_accept`):
    /// blocks until a client connects, then returns the intercommunicator
    /// (this process is group A, the client group B).
    pub fn accept(&self, name: &str) -> Result<Comm, MpiError> {
        let q = self
            .universe()
            .state
            .named_ports
            .lock()
            .get(name)
            .cloned()
            .ok_or_else(|| MpiError::SpawnFailed(format!("port '{name}' not open")))?;
        let req = q.recv().map_err(|_| MpiError::Finalized)?;
        let uni = self.universe().clone();
        let inter =
            uni.register_comm(CommGroups::Inter { a: vec![self.proc_id()], b: vec![req.client] });
        req.reply.put(inter);
        Ok(Comm::new(uni, inter, self.proc_id()))
    }

    /// Connect to a published port (`MPI_Comm_connect`): blocks until the
    /// server accepts, then returns the intercommunicator (the server is
    /// the remote group).
    pub fn connect(&self, name: &str) -> Result<Comm, MpiError> {
        let q = self
            .universe()
            .state
            .named_ports
            .lock()
            .get(name)
            .cloned()
            .ok_or_else(|| MpiError::SpawnFailed(format!("port '{name}' not open")))?;
        let reply: OnceCell<CommId> = OnceCell::new();
        q.send(ConnRequest { client: self.proc_id(), reply: reply.clone() });
        let inter = reply.take();
        Ok(Comm::new(self.universe().clone(), inter, self.proc_id()))
    }
}

#[cfg(test)]
mod tests {
    use crate::mpiexec;
    use fabric::{ClusterSpec, Net};

    fn run(ranks: usize, f: impl Fn(crate::Comm) + Send + Sync + 'static) {
        let sim = simt::Sim::new();
        let placements: Vec<usize> = (0..ranks).map(|i| i % 2).collect();
        sim.spawn("launcher", move || {
            let net = Net::new(&ClusterSpec::test(2));
            mpiexec(&net, &placements, f);
        });
        sim.run().unwrap().assert_clean();
    }

    #[test]
    fn connect_accept_roundtrip() {
        run(2, |world| {
            if world.rank() == 0 {
                world.open_port("svc").unwrap();
                let inter = world.accept("svc").unwrap();
                assert!(inter.is_inter());
                let (v, st) = inter.recv_value::<u64>(Some(0), Some(1)).unwrap();
                assert_eq!(*v, 99);
                assert_eq!(st.source, 0);
                inter.send_value(0, 2, *v + 1, 8).unwrap();
                world.close_port("svc");
            } else {
                simt::sleep(1_000); // let the server open the port
                let inter = world.connect("svc").unwrap();
                inter.send_value(0, 1, 99u64, 8).unwrap();
                let (v, _) = inter.recv_value::<u64>(Some(0), Some(2)).unwrap();
                assert_eq!(*v, 100);
            }
        });
    }

    #[test]
    fn accept_serves_multiple_clients_in_turn() {
        run(3, |world| {
            if world.rank() == 0 {
                world.open_port("multi").unwrap();
                for _ in 0..2 {
                    let inter = world.accept("multi").unwrap();
                    let (v, _) = inter.recv_value::<u32>(Some(0), Some(5)).unwrap();
                    inter.send_value(0, 6, *v * 2, 8).unwrap();
                }
                world.close_port("multi");
            } else {
                simt::sleep(u64::from(world.rank()) * 1_000);
                let inter = world.connect("multi").unwrap();
                inter.send_value(0, 5, world.rank() * 7, 8).unwrap();
                let (v, _) = inter.recv_value::<u32>(Some(0), Some(6)).unwrap();
                assert_eq!(*v, world.rank() * 14);
            }
        });
    }

    #[test]
    fn connect_to_missing_port_errors() {
        run(1, |world| {
            assert!(world.connect("ghost").is_err());
            assert!(world.accept("ghost").is_err());
        });
    }

    #[test]
    fn duplicate_port_name_rejected() {
        run(1, |world| {
            world.open_port("p").unwrap();
            assert!(world.open_port("p").is_err());
            world.close_port("p");
            world.open_port("p").unwrap();
        });
    }
}
