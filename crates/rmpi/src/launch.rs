//! The `mpiexec` analog: launch N ranks across cluster nodes, each with a
//! `MPI_COMM_WORLD` handle (paper §III challenge 1 / §V).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use fabric::{Net, NodeId, StackModel};
use parking_lot::Mutex;

use crate::comm::Comm;
use crate::proc::{spawn_pump, CommGroups, CommInfo, MsgStore, ProcState, UniverseState};
use crate::types::{CommId, ProcId};

/// Handle to a running MPI universe (one per `mpiexec` invocation).
#[derive(Clone)]
pub struct Universe {
    pub(crate) state: Arc<UniverseState>,
}

impl Universe {
    /// Create an empty universe on `net` using the native-MPI cost model.
    pub fn new(net: Net) -> Universe {
        Universe {
            state: Arc::new(UniverseState {
                net,
                stack: StackModel::native_mpi(),
                procs: Mutex::new(Default::default()),
                comms: Mutex::new(Default::default()),
                parents: Mutex::new(Default::default()),
                named_ports: Mutex::new(Default::default()),
                next_proc: AtomicU64::new(1),
                next_comm: AtomicU64::new(1),
            }),
        }
    }

    /// The fabric this universe runs on.
    pub fn net(&self) -> &Net {
        &self.state.net
    }

    /// Register a new process on `node` (mailbox + pump) without starting
    /// any thread. Returns its id.
    pub(crate) fn register_proc(&self, name: &str, node: NodeId) -> ProcId {
        let id = ProcId(self.state.next_proc.fetch_add(1, Ordering::Relaxed));
        let rx = self.state.net.bind_auto(node);
        let mailbox = rx.addr();
        let store = MsgStore::default();
        spawn_pump(&format!("{name}#{}", id.0), rx, store.clone());
        let ps = Arc::new(ProcState {
            id,
            node,
            mailbox,
            store,
            coll_seq: Mutex::new(Default::default()),
        });
        self.state.procs.lock().insert(id, ps);
        id
    }

    /// Register a communicator over existing processes.
    pub(crate) fn register_comm(&self, groups: CommGroups) -> CommId {
        let id = CommId(self.state.next_comm.fetch_add(1, Ordering::Relaxed));
        self.state.comms.lock().insert(id, Arc::new(CommInfo { id, groups }));
        id
    }

    /// Number of registered processes (diagnostics).
    pub fn proc_count(&self) -> usize {
        self.state.procs.lock().len()
    }
}

/// A rank's entry point.
pub type RankEntry = Box<dyn FnOnce(Comm) + Send + 'static>;

/// Launch one rank per entry, rank *i* on `placements[i]`, and build their
/// world communicator. Must be called from inside a simulation green thread.
/// Returns the universe handle.
pub fn mpiexec_with(net: &Net, placements: &[NodeId], entries: Vec<RankEntry>) -> Universe {
    assert_eq!(
        placements.len(),
        entries.len(),
        "one placement per rank entry (got {} placements, {} entries)",
        placements.len(),
        entries.len()
    );
    let uni = Universe::new(net.clone());
    let ids: Vec<ProcId> = placements
        .iter()
        .enumerate()
        .map(|(i, node)| uni.register_proc(&format!("rank{i}"), *node))
        .collect();
    let world = uni.register_comm(CommGroups::Intra(ids.clone()));
    for (i, entry) in entries.into_iter().enumerate() {
        let comm = Comm::new(uni.clone(), world, ids[i]);
        simt::spawn(format!("mpi-rank{i}"), move || entry(comm));
    }
    uni
}

/// SPMD launch: `n` copies of the same entry, rank *i* on `placements[i]`.
pub fn mpiexec(
    net: &Net,
    placements: &[NodeId],
    entry: impl Fn(Comm) + Send + Sync + 'static,
) -> Universe {
    let entry = Arc::new(entry);
    let entries: Vec<RankEntry> = (0..placements.len())
        .map(|_| {
            let e = entry.clone();
            Box::new(move |c: Comm| e(c)) as RankEntry
        })
        .collect();
    mpiexec_with(net, placements, entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric::ClusterSpec;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn mpiexec_assigns_ranks_and_nodes() {
        let sim = simt::Sim::new();
        let net = Net::new(&ClusterSpec::test(3));
        let seen = Arc::new(Mutex::new(Vec::new()));
        let seen2 = seen.clone();
        sim.spawn("launcher", move || {
            let placements = vec![0, 1, 2, 0];
            let seen3 = seen2.clone();
            mpiexec(&net, &placements, move |comm| {
                seen3.lock().push((comm.rank(), comm.size()));
            });
        });
        sim.run().unwrap().assert_clean();
        let mut s = seen.lock().clone();
        s.sort_unstable();
        assert_eq!(s, vec![(0, 4), (1, 4), (2, 4), (3, 4)]);
    }

    #[test]
    fn heterogeneous_entries_run() {
        let sim = simt::Sim::new();
        let net = Net::new(&ClusterSpec::test(2));
        let count = Arc::new(AtomicUsize::new(0));
        let c2 = count.clone();
        sim.spawn("launcher", move || {
            let c3 = c2.clone();
            let c4 = c2.clone();
            mpiexec_with(
                &net,
                &[0, 1],
                vec![
                    Box::new(move |c: Comm| {
                        assert_eq!(c.rank(), 0);
                        c3.fetch_add(1, Ordering::SeqCst);
                    }),
                    Box::new(move |c: Comm| {
                        assert_eq!(c.rank(), 1);
                        c4.fetch_add(10, Ordering::SeqCst);
                    }),
                ],
            );
        });
        sim.run().unwrap().assert_clean();
        assert_eq!(count.load(Ordering::SeqCst), 11);
    }
}
