//! # rmpi — an MPI-analog message passing library
//!
//! Stands in for MVAPICH2-X plus the paper's custom Java bindings (§VI-A).
//! It reproduces the MPI facilities MPI4Spark depends on:
//!
//! * **SPMD launch** — [`launch::mpiexec`] starts N ranks on cluster nodes,
//!   each as a simulated process with a `MPI_COMM_WORLD` handle
//!   (paper challenge 1, §III).
//! * **Point-to-point** — blocking/nonblocking send/recv with
//!   `(communicator, source, tag)` matching and an unexpected-message queue,
//!   plus `probe`/`iprobe` (the Basic design's polling primitive, §VI-D).
//! * **Collectives** — `barrier`, `bcast`, `gather`, `allgather` (used to
//!   exchange executor launch specifications, §V), `allreduce`.
//! * **Dynamic Process Management** — [`Comm::spawn_multiple`] mirrors
//!   `MPI_Comm_spawn_multiple()`: spawned children share a fresh child
//!   world (the paper's `DPM_COMM`) and talk to their parents through an
//!   intercommunicator; [`Comm::merge`] provides the merged intracomm
//!   (paper challenge 3 and Fig. 3 Step C).
//!
//! Deviations from real MPI, all documented in `DESIGN.md`: tags are `u64`
//! (we use them to encode channel ids), payloads are [`fabric::Payload`]
//! values rather than typed buffers, and `isend` has buffered-send
//! semantics (completion on return).

pub mod coll;
pub mod comm;
pub mod connect;
pub mod dpm;
pub mod launch;
pub mod proc;
pub mod types;

pub use comm::{testsome, waitall, waitany, Comm, Request};
pub use dpm::SpawnSpec;
pub use launch::{mpiexec, mpiexec_with, Universe};
pub use proc::{Completed, CompletionSet};
pub use types::{CommId, MpiError, ProcId, Status, ANY_SOURCE, ANY_TAG};
