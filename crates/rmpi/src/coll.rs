//! Collective operations over intracommunicators.
//!
//! Implemented over point-to-point sends with reserved tags; each collective
//! round consumes one per-communicator sequence number, so collectives and
//! user p2p traffic never cross-match. The data-movement collectives run
//! binomial-tree exchanges built on nonblocking requests ([`Comm::irecv`] +
//! [`crate::waitall`]): a rank posts one receive per tree child up front and
//! completes them as a batch, so an N-rank round costs O(log N) latency
//! steps instead of the old flat O(N) loop at the root.
//!
//! Tree addressing works in *virtual ranks* (`vrank = (rank + size - root) %
//! size`), which places the root at virtual rank 0 for any actual root. A
//! virtual rank `v`'s parent clears its lowest set bit (`v & (v - 1)`); its
//! children are `v + 1, v + 2, v + 4, …` below the next power of two. All
//! loops iterate in deterministic child order, and completion order inside a
//! batch is fixed by virtual arrival time, so collective timings stay
//! byte-reproducible across runs.

use std::any::Any;

use crate::comm::{waitall, Comm, Request};
use crate::types::MpiError;

/// Reserved tag space for collective rounds.
const COLL_BASE: u64 = 1 << 62;

fn coll_tag(op: u64, seq: u64) -> u64 {
    COLL_BASE | (op << 48) | (seq & 0xFFFF_FFFF_FFFF)
}

const OP_BARRIER_IN: u64 = 1;
const OP_BARRIER_OUT: u64 = 2;
const OP_BCAST: u64 = 3;
const OP_GATHER: u64 = 4;

/// Wire size charged for zero-data control hops within collectives.
const TOKEN_BYTES: u64 = 16;

/// Lowest set bit of `v` (undefined for 0; callers special-case the root).
fn lowbit(v: u32) -> u32 {
    v & v.wrapping_neg()
}

/// Parent of virtual rank `v` in the binomial tree (clear the lowest set
/// bit). The root (virtual rank 0) has no parent.
fn tree_parent(v: u32) -> u32 {
    v & (v - 1)
}

/// Children of virtual rank `v` in a `size`-member binomial tree, in
/// deterministic increasing order.
fn tree_children(v: u32, size: u32) -> Vec<u32> {
    let limit = if v == 0 { size } else { lowbit(v) };
    let mut out = Vec::new();
    let mut m = 1u32;
    while m < limit {
        let child = v + m;
        if child >= size {
            break;
        }
        out.push(child);
        m <<= 1;
    }
    out
}

impl Comm {
    /// Span covering one collective phase on this rank (when tracing is on).
    fn coll_span(&self, name: &'static str, root: Option<u32>) -> Option<obs::Span> {
        let obs = self.universe().net().obs();
        obs.is_traced().then(|| {
            let mut kvs = obs::kv! {"rank" => self.rank(), "size" => self.size()};
            if let Some(r) = root {
                kvs.push(("root".to_string(), r.to_string()));
            }
            obs.span(name, kvs)
        })
    }

    /// Virtual rank of this process in a tree rooted at `root`.
    fn vrank(&self, root: u32) -> u32 {
        (self.rank() + self.size() - root) % self.size()
    }

    /// Actual rank addressed by virtual rank `v` in a tree rooted at `root`.
    fn actual(&self, v: u32, root: u32) -> u32 {
        (v + root) % self.size()
    }

    /// `MPI_Barrier`: returns once every member has entered. Binomial-tree
    /// fan-in to rank 0 followed by a tree fan-out.
    pub fn barrier(&self) -> Result<(), MpiError> {
        let _span = self.coll_span("rmpi.coll.barrier", None);
        let seq = self.next_coll_seq();
        let size = self.size();
        if size == 1 {
            return Ok(());
        }
        let v = self.rank(); // root 0 ⇒ vrank == rank
        let children = tree_children(v, size);

        // Fan-in: wait for every child subtree, then report to the parent.
        let reqs: Vec<Request> = children
            .iter()
            .map(|&c| self.irecv(Some(c), Some(coll_tag(OP_BARRIER_IN, seq))))
            .collect();
        waitall(reqs)?;
        if v != 0 {
            self.send(
                tree_parent(v),
                coll_tag(OP_BARRIER_IN, seq),
                fabric::Payload::bytes_scaled(bytes::Bytes::new(), TOKEN_BYTES),
            )?;
            // Fan-out: the release token retraces the tree edges downward.
            let _ = self.recv(Some(tree_parent(v)), Some(coll_tag(OP_BARRIER_OUT, seq)))?;
        }
        for &c in &children {
            self.send(
                c,
                coll_tag(OP_BARRIER_OUT, seq),
                fabric::Payload::bytes_scaled(bytes::Bytes::new(), TOKEN_BYTES),
            )?;
        }
        Ok(())
    }

    /// `MPI_Bcast`: `root` supplies `Some(value)`; everyone returns the
    /// value. `virtual_len` is the charged wire size per hop. Tree descent:
    /// each rank receives from its tree parent and forwards to its children
    /// with nonblocking sends completed as a batch.
    pub fn bcast<T: Any + Send + Sync + Clone>(
        &self,
        root: u32,
        value: Option<T>,
        virtual_len: u64,
    ) -> Result<T, MpiError> {
        let _span = self.coll_span("rmpi.coll.bcast", Some(root));
        let seq = self.next_coll_seq();
        let size = self.size();
        let v = self.vrank(root);
        let value = if v == 0 {
            value.expect("bcast root must supply a value")
        } else {
            let src = self.actual(tree_parent(v), root);
            let (got, _st) = self.recv_value::<T>(Some(src), Some(coll_tag(OP_BCAST, seq)))?;
            (*got).clone()
        };
        let sends: Vec<Request> = tree_children(v, size)
            .into_iter()
            .map(|c| {
                self.isend(
                    self.actual(c, root),
                    coll_tag(OP_BCAST, seq),
                    fabric::Payload::control(value.clone(), virtual_len),
                )
            })
            .collect::<Result<_, _>>()?;
        waitall(sends)?;
        Ok(value)
    }

    /// `MPI_Gather`: root returns `Some(vec)` in rank order; others `None`.
    /// Tree ascent: each rank batches the receives from all its children
    /// with `waitall`, merges the subtree contributions, and forwards one
    /// message (charged by subtree size) to its parent.
    pub fn gather<T: Any + Send + Sync + Clone>(
        &self,
        root: u32,
        value: T,
        virtual_len: u64,
    ) -> Result<Option<Vec<T>>, MpiError> {
        let _span = self.coll_span("rmpi.coll.gather", Some(root));
        let seq = self.next_coll_seq();
        let size = self.size();
        let v = self.vrank(root);

        // Post one receive per child subtree, then complete them together.
        let children = tree_children(v, size);
        let reqs: Vec<Request> = children
            .iter()
            .map(|&c| self.irecv(Some(self.actual(c, root)), Some(coll_tag(OP_GATHER, seq))))
            .collect();
        let mut subtree: Vec<(u32, T)> = vec![(self.rank(), value)];
        for done in waitall(reqs)? {
            let (payload, _st) = done.expect("gather receive completes with a message");
            let part = payload
                .value_as::<Vec<(u32, T)>>()
                .expect("gather subtree carries rank-tagged values");
            subtree.extend(part.iter().cloned());
        }

        if v == 0 {
            debug_assert_eq!(subtree.len(), size as usize, "gather root saw every rank");
            subtree.sort_by_key(|(rank, _)| *rank);
            Ok(Some(subtree.into_iter().map(|(_, value)| value).collect()))
        } else {
            let parent = self.actual(tree_parent(v), root);
            let charged = virtual_len * subtree.len() as u64;
            self.send_value(parent, coll_tag(OP_GATHER, seq), subtree, charged)?;
            Ok(None)
        }
    }

    /// `MPI_Allgather`: everyone returns the rank-ordered vector. This is
    /// the collective the paper uses to exchange executor launch arguments
    /// across workers before `MPI_Comm_spawn_multiple` (§V).
    pub fn allgather<T: Any + Send + Sync + Clone>(
        &self,
        value: T,
        virtual_len: u64,
    ) -> Result<Vec<T>, MpiError> {
        let _span = self.coll_span("rmpi.coll.allgather", None);
        let n = self.size() as u64;
        let gathered = self.gather(0, value, virtual_len)?;
        self.bcast(0, gathered, virtual_len * n)
    }

    /// `MPI_Allreduce` with a user-supplied associative combiner.
    pub fn allreduce<T: Any + Send + Sync + Clone>(
        &self,
        value: T,
        virtual_len: u64,
        combine: impl Fn(T, T) -> T,
    ) -> Result<T, MpiError> {
        let _span = self.coll_span("rmpi.coll.allreduce", None);
        let gathered = self.gather(0, value, virtual_len)?;
        let reduced = gathered.map(|vs| {
            let mut it = vs.into_iter();
            let first = it.next().expect("non-empty communicator");
            it.fold(first, &combine)
        });
        self.bcast(0, reduced, virtual_len)
    }
}

#[cfg(test)]
mod tests {
    use super::{tree_children, tree_parent};
    use crate::launch::mpiexec;
    use fabric::{ClusterSpec, Net};
    use parking_lot::Mutex;
    use std::sync::Arc;

    fn run_ranks(n_nodes: usize, ranks: usize, f: impl Fn(crate::Comm) + Send + Sync + 'static) {
        let sim = simt::Sim::new();
        let placements: Vec<usize> = (0..ranks).map(|i| i % n_nodes).collect();
        sim.spawn("launcher", move || {
            let net = Net::new(&ClusterSpec::test(n_nodes));
            mpiexec(&net, &placements, f);
        });
        let r = sim.run().unwrap();
        r.assert_clean();
    }

    #[test]
    fn binomial_tree_shape_is_consistent() {
        // Every non-root's parent lists it as a child; the tree spans 1..n.
        for size in 1u32..=33 {
            let mut seen = vec![false; size as usize];
            seen[0] = true;
            for v in 1..size {
                let p = tree_parent(v);
                assert!(tree_children(p, size).contains(&v), "size {size}: {p} !-> {v}");
                assert!(!seen[v as usize], "size {size}: {v} reached twice");
                seen[v as usize] = true;
            }
            assert!(seen.iter().all(|s| *s), "size {size}: tree does not span");
        }
    }

    #[test]
    fn barrier_synchronizes_times() {
        let after = Arc::new(Mutex::new(Vec::new()));
        let after2 = after.clone();
        run_ranks(2, 4, move |comm| {
            // Stagger entries; everyone leaves at (or after) the slowest.
            simt::sleep(u64::from(comm.rank()) * 1_000);
            comm.barrier().unwrap();
            after2.lock().push(simt::now());
        });
        let times = after.lock().clone();
        assert_eq!(times.len(), 4);
        assert!(times.iter().all(|t| *t >= 3_000), "{times:?}");
    }

    #[test]
    fn bcast_distributes_root_value() {
        let got = Arc::new(Mutex::new(Vec::new()));
        let got2 = got.clone();
        run_ranks(2, 3, move |comm| {
            let v = comm.bcast(0, if comm.rank() == 0 { Some(42u64) } else { None }, 8).unwrap();
            got2.lock().push(v);
        });
        assert_eq!(got.lock().clone(), vec![42, 42, 42]);
    }

    #[test]
    fn bcast_from_nonzero_root() {
        let got = Arc::new(Mutex::new(Vec::new()));
        let got2 = got.clone();
        run_ranks(2, 3, move |comm| {
            let v = comm
                .bcast(2, if comm.rank() == 2 { Some("hi".to_string()) } else { None }, 2)
                .unwrap();
            got2.lock().push(v);
        });
        assert_eq!(got.lock().clone(), vec!["hi", "hi", "hi"]);
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let got = Arc::new(Mutex::new(None));
        let got2 = got.clone();
        run_ranks(2, 4, move |comm| {
            let r = comm.gather(0, u64::from(comm.rank()) * 10, 8).unwrap();
            if comm.rank() == 0 {
                *got2.lock() = r;
            } else {
                assert!(r.is_none());
            }
        });
        assert_eq!(got.lock().clone(), Some(vec![0, 10, 20, 30]));
    }

    #[test]
    fn gather_from_nonzero_root_over_a_deep_tree() {
        // 9 ranks forces a 3-level tree plus a vrank rotation: actual rank 5
        // is the root, so virtual rank v maps to actual (v + 5) % 9.
        let got = Arc::new(Mutex::new(None));
        let got2 = got.clone();
        run_ranks(3, 9, move |comm| {
            let r = comm.gather(5, u64::from(comm.rank()) * 10, 8).unwrap();
            if comm.rank() == 5 {
                *got2.lock() = r;
            } else {
                assert!(r.is_none());
            }
        });
        assert_eq!(got.lock().clone(), Some((0..9).map(|i| i * 10).collect::<Vec<u64>>()));
    }

    #[test]
    fn allgather_gives_everyone_everything() {
        let got = Arc::new(Mutex::new(Vec::new()));
        let got2 = got.clone();
        run_ranks(3, 3, move |comm| {
            // The paper's §V use case: exchange executor launch args.
            let arg = format!("--executor-on-rank-{}", comm.rank());
            let all = comm.allgather(arg, 64).unwrap();
            got2.lock().push(all);
        });
        let all = got.lock().clone();
        assert_eq!(all.len(), 3);
        for v in all {
            assert_eq!(
                v,
                vec![
                    "--executor-on-rank-0".to_string(),
                    "--executor-on-rank-1".to_string(),
                    "--executor-on-rank-2".to_string()
                ]
            );
        }
    }

    #[test]
    fn allreduce_sums() {
        let got = Arc::new(Mutex::new(Vec::new()));
        let got2 = got.clone();
        run_ranks(2, 4, move |comm| {
            let s = comm.allreduce(u64::from(comm.rank()) + 1, 8, |a, b| a + b).unwrap();
            got2.lock().push(s);
        });
        assert_eq!(got.lock().clone(), vec![10, 10, 10, 10]);
    }

    #[test]
    fn back_to_back_collectives_do_not_cross_match() {
        let got = Arc::new(Mutex::new(Vec::new()));
        let got2 = got.clone();
        run_ranks(2, 3, move |comm| {
            let a = comm.bcast(0, if comm.rank() == 0 { Some(1u64) } else { None }, 8).unwrap();
            comm.barrier().unwrap();
            let b = comm.bcast(1, if comm.rank() == 1 { Some(2u64) } else { None }, 8).unwrap();
            let c = comm.allgather(comm.rank(), 8).unwrap();
            got2.lock().push((a, b, c));
        });
        for (a, b, c) in got.lock().clone() {
            assert_eq!((a, b), (1, 2));
            assert_eq!(c, vec![0, 1, 2]);
        }
    }

    #[test]
    fn p2p_and_collectives_coexist() {
        run_ranks(2, 2, move |comm| {
            if comm.rank() == 0 {
                // Send user traffic with a tag in the collective numeric
                // range (but without the reserved bit).
                comm.send_value(1, 0xFFFF, 7u32, 8).unwrap();
                comm.barrier().unwrap();
            } else {
                comm.barrier().unwrap();
                let (v, st) = comm.recv_value::<u32>(Some(0), Some(0xFFFF)).unwrap();
                assert_eq!(*v, 7);
                assert_eq!(st.source, 0);
            }
        });
    }
}
