//! Collective operations over intracommunicators.
//!
//! Implemented over point-to-point sends with reserved tags; each collective
//! round consumes one per-communicator sequence number, so collectives and
//! user p2p traffic never cross-match. Linear algorithms — the universes
//! simulated here have at most a few dozen ranks per communicator, where
//! linear and tree algorithms are within a small constant of each other.

use std::any::Any;

use crate::comm::Comm;
use crate::types::MpiError;

/// Reserved tag space for collective rounds.
const COLL_BASE: u64 = 1 << 62;

fn coll_tag(op: u64, seq: u64) -> u64 {
    COLL_BASE | (op << 48) | (seq & 0xFFFF_FFFF_FFFF)
}

const OP_BARRIER_IN: u64 = 1;
const OP_BARRIER_OUT: u64 = 2;
const OP_BCAST: u64 = 3;
const OP_GATHER: u64 = 4;

/// Wire size charged for zero-data control hops within collectives.
const TOKEN_BYTES: u64 = 16;

impl Comm {
    /// Span covering one collective phase on this rank (when tracing is on).
    fn coll_span(&self, name: &'static str, root: Option<u32>) -> Option<obs::Span> {
        let obs = self.universe().net().obs();
        obs.is_traced().then(|| {
            let mut kvs = obs::kv! {"rank" => self.rank(), "size" => self.size()};
            if let Some(r) = root {
                kvs.push(("root".to_string(), r.to_string()));
            }
            obs.span(name, kvs)
        })
    }

    /// `MPI_Barrier`: returns once every member has entered.
    pub fn barrier(&self) -> Result<(), MpiError> {
        let _span = self.coll_span("rmpi.coll.barrier", None);
        let seq = self.next_coll_seq();
        let size = self.size();
        let rank = self.rank();
        if size == 1 {
            return Ok(());
        }
        if rank == 0 {
            for src in 1..size {
                let _ = self.recv(Some(src), Some(coll_tag(OP_BARRIER_IN, seq)))?;
            }
            for dst in 1..size {
                self.send(
                    dst,
                    coll_tag(OP_BARRIER_OUT, seq),
                    fabric::Payload::bytes_scaled(bytes::Bytes::new(), TOKEN_BYTES),
                )?;
            }
        } else {
            self.send(
                0,
                coll_tag(OP_BARRIER_IN, seq),
                fabric::Payload::bytes_scaled(bytes::Bytes::new(), TOKEN_BYTES),
            )?;
            let _ = self.recv(Some(0), Some(coll_tag(OP_BARRIER_OUT, seq)))?;
        }
        Ok(())
    }

    /// `MPI_Bcast`: `root` supplies `Some(value)`; everyone returns the
    /// value. `virtual_len` is the charged wire size per hop.
    pub fn bcast<T: Any + Send + Sync + Clone>(
        &self,
        root: u32,
        value: Option<T>,
        virtual_len: u64,
    ) -> Result<T, MpiError> {
        let _span = self.coll_span("rmpi.coll.bcast", Some(root));
        let seq = self.next_coll_seq();
        let rank = self.rank();
        let size = self.size();
        if rank == root {
            let v = value.expect("bcast root must supply a value");
            for dst in 0..size {
                if dst != root {
                    self.send_value(dst, coll_tag(OP_BCAST, seq), v.clone(), virtual_len)?;
                }
            }
            Ok(v)
        } else {
            let (v, _st) = self.recv_value::<T>(Some(root), Some(coll_tag(OP_BCAST, seq)))?;
            Ok((*v).clone())
        }
    }

    /// `MPI_Gather`: root returns `Some(vec)` in rank order; others `None`.
    pub fn gather<T: Any + Send + Sync + Clone>(
        &self,
        root: u32,
        value: T,
        virtual_len: u64,
    ) -> Result<Option<Vec<T>>, MpiError> {
        let _span = self.coll_span("rmpi.coll.gather", Some(root));
        let seq = self.next_coll_seq();
        let rank = self.rank();
        let size = self.size();
        if rank == root {
            let mut out: Vec<Option<T>> = vec![None; size as usize];
            out[root as usize] = Some(value);
            for src in 0..size {
                if src != root {
                    let (v, _st) =
                        self.recv_value::<T>(Some(src), Some(coll_tag(OP_GATHER, seq)))?;
                    out[src as usize] = Some((*v).clone());
                }
            }
            Ok(Some(out.into_iter().map(|v| v.expect("all ranks gathered")).collect()))
        } else {
            self.send_value(root, coll_tag(OP_GATHER, seq), value, virtual_len)?;
            Ok(None)
        }
    }

    /// `MPI_Allgather`: everyone returns the rank-ordered vector. This is
    /// the collective the paper uses to exchange executor launch arguments
    /// across workers before `MPI_Comm_spawn_multiple` (§V).
    pub fn allgather<T: Any + Send + Sync + Clone>(
        &self,
        value: T,
        virtual_len: u64,
    ) -> Result<Vec<T>, MpiError> {
        let _span = self.coll_span("rmpi.coll.allgather", None);
        let n = self.size() as u64;
        let gathered = self.gather(0, value, virtual_len)?;
        self.bcast(0, gathered, virtual_len * n)
    }

    /// `MPI_Allreduce` with a user-supplied associative combiner.
    pub fn allreduce<T: Any + Send + Sync + Clone>(
        &self,
        value: T,
        virtual_len: u64,
        combine: impl Fn(T, T) -> T,
    ) -> Result<T, MpiError> {
        let _span = self.coll_span("rmpi.coll.allreduce", None);
        let gathered = self.gather(0, value, virtual_len)?;
        let reduced = gathered.map(|vs| {
            let mut it = vs.into_iter();
            let first = it.next().expect("non-empty communicator");
            it.fold(first, &combine)
        });
        self.bcast(0, reduced, virtual_len)
    }
}

#[cfg(test)]
mod tests {
    use crate::launch::mpiexec;
    use fabric::{ClusterSpec, Net};
    use parking_lot::Mutex;
    use std::sync::Arc;

    fn run_ranks(n_nodes: usize, ranks: usize, f: impl Fn(crate::Comm) + Send + Sync + 'static) {
        let sim = simt::Sim::new();
        let placements: Vec<usize> = (0..ranks).map(|i| i % n_nodes).collect();
        sim.spawn("launcher", move || {
            let net = Net::new(&ClusterSpec::test(n_nodes));
            mpiexec(&net, &placements, f);
        });
        let r = sim.run().unwrap();
        r.assert_clean();
    }

    #[test]
    fn barrier_synchronizes_times() {
        let after = Arc::new(Mutex::new(Vec::new()));
        let after2 = after.clone();
        run_ranks(2, 4, move |comm| {
            // Stagger entries; everyone leaves at (or after) the slowest.
            simt::sleep(u64::from(comm.rank()) * 1_000);
            comm.barrier().unwrap();
            after2.lock().push(simt::now());
        });
        let times = after.lock().clone();
        assert_eq!(times.len(), 4);
        assert!(times.iter().all(|t| *t >= 3_000), "{times:?}");
    }

    #[test]
    fn bcast_distributes_root_value() {
        let got = Arc::new(Mutex::new(Vec::new()));
        let got2 = got.clone();
        run_ranks(2, 3, move |comm| {
            let v = comm.bcast(0, if comm.rank() == 0 { Some(42u64) } else { None }, 8).unwrap();
            got2.lock().push(v);
        });
        assert_eq!(got.lock().clone(), vec![42, 42, 42]);
    }

    #[test]
    fn bcast_from_nonzero_root() {
        let got = Arc::new(Mutex::new(Vec::new()));
        let got2 = got.clone();
        run_ranks(2, 3, move |comm| {
            let v = comm
                .bcast(2, if comm.rank() == 2 { Some("hi".to_string()) } else { None }, 2)
                .unwrap();
            got2.lock().push(v);
        });
        assert_eq!(got.lock().clone(), vec!["hi", "hi", "hi"]);
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let got = Arc::new(Mutex::new(None));
        let got2 = got.clone();
        run_ranks(2, 4, move |comm| {
            let r = comm.gather(0, u64::from(comm.rank()) * 10, 8).unwrap();
            if comm.rank() == 0 {
                *got2.lock() = r;
            } else {
                assert!(r.is_none());
            }
        });
        assert_eq!(got.lock().clone(), Some(vec![0, 10, 20, 30]));
    }

    #[test]
    fn allgather_gives_everyone_everything() {
        let got = Arc::new(Mutex::new(Vec::new()));
        let got2 = got.clone();
        run_ranks(3, 3, move |comm| {
            // The paper's §V use case: exchange executor launch args.
            let arg = format!("--executor-on-rank-{}", comm.rank());
            let all = comm.allgather(arg, 64).unwrap();
            got2.lock().push(all);
        });
        let all = got.lock().clone();
        assert_eq!(all.len(), 3);
        for v in all {
            assert_eq!(
                v,
                vec![
                    "--executor-on-rank-0".to_string(),
                    "--executor-on-rank-1".to_string(),
                    "--executor-on-rank-2".to_string()
                ]
            );
        }
    }

    #[test]
    fn allreduce_sums() {
        let got = Arc::new(Mutex::new(Vec::new()));
        let got2 = got.clone();
        run_ranks(2, 4, move |comm| {
            let s = comm.allreduce(u64::from(comm.rank()) + 1, 8, |a, b| a + b).unwrap();
            got2.lock().push(s);
        });
        assert_eq!(got.lock().clone(), vec![10, 10, 10, 10]);
    }

    #[test]
    fn back_to_back_collectives_do_not_cross_match() {
        let got = Arc::new(Mutex::new(Vec::new()));
        let got2 = got.clone();
        run_ranks(2, 3, move |comm| {
            let a = comm.bcast(0, if comm.rank() == 0 { Some(1u64) } else { None }, 8).unwrap();
            comm.barrier().unwrap();
            let b = comm.bcast(1, if comm.rank() == 1 { Some(2u64) } else { None }, 8).unwrap();
            let c = comm.allgather(comm.rank(), 8).unwrap();
            got2.lock().push((a, b, c));
        });
        for (a, b, c) in got.lock().clone() {
            assert_eq!((a, b), (1, 2));
            assert_eq!(c, vec![0, 1, 2]);
        }
    }

    #[test]
    fn p2p_and_collectives_coexist() {
        run_ranks(2, 2, move |comm| {
            if comm.rank() == 0 {
                // Send user traffic with a tag in the collective numeric
                // range (but without the reserved bit).
                comm.send_value(1, 0xFFFF, 7u32, 8).unwrap();
                comm.barrier().unwrap();
            } else {
                comm.barrier().unwrap();
                let (v, st) = comm.recv_value::<u32>(Some(0), Some(0xFFFF)).unwrap();
                assert_eq!(*v, 7);
                assert_eq!(st.source, 0);
            }
        });
    }
}
