//! Communicator handles and point-to-point operations.

use std::sync::Arc;

use fabric::Payload;

use crate::launch::Universe;
use crate::proc::{CommInfo, CompletionSet, Matcher, MpiMsg, ProcState, ReqId, IPROBE_CPU_NS};
use crate::types::{CommId, MpiError, ProcId, Status};

/// A communicator handle bound to one calling process. Cheap to clone;
/// clones may be used from any green thread belonging to that process
/// (Netty event loops, executor task slots, ...).
#[derive(Clone)]
pub struct Comm {
    uni: Universe,
    comm: CommId,
    proc: ProcId,
}

impl Comm {
    pub(crate) fn new(uni: Universe, comm: CommId, proc: ProcId) -> Comm {
        Comm { uni, comm, proc }
    }

    fn info(&self) -> Arc<CommInfo> {
        self.uni.state.comms.lock().get(&self.comm).expect("communicator exists").clone()
    }

    fn me(&self) -> Arc<ProcState> {
        self.uni.state.procs.lock().get(&self.proc).expect("process exists").clone()
    }

    fn proc_state(&self, p: ProcId) -> Arc<ProcState> {
        self.uni.state.procs.lock().get(&p).expect("process exists").clone()
    }

    /// The universe this communicator belongs to.
    pub fn universe(&self) -> &Universe {
        &self.uni
    }

    /// Communicator id.
    pub fn id(&self) -> CommId {
        self.comm
    }

    /// This process's id.
    pub fn proc_id(&self) -> ProcId {
        self.proc
    }

    /// Node the calling process runs on.
    pub fn node(&self) -> fabric::NodeId {
        self.me().node
    }

    /// Rank of the calling process (within its group, for intercomms).
    pub fn rank(&self) -> u32 {
        self.info().local_rank(self.proc).expect("caller is a member")
    }

    /// Local group size.
    pub fn size(&self) -> u32 {
        self.info().local_size(self.proc) as u32
    }

    /// Remote group size (== `size()` for intracommunicators).
    pub fn remote_size(&self) -> u32 {
        self.info().remote_size(self.proc) as u32
    }

    /// True when this is an intercommunicator.
    pub fn is_inter(&self) -> bool {
        matches!(self.info().groups, crate::proc::CommGroups::Inter { .. })
    }

    /// Blocking (buffered) send to `dest` with `tag`.
    ///
    /// Returns once the send-side software cost is paid — the message is
    /// buffered by the fabric, matching an eager/buffered-mode MPI send.
    pub fn send(&self, dest: u32, tag: u64, payload: Payload) -> Result<(), MpiError> {
        let info = self.info();
        let dest_proc = info.resolve_dest(self.proc, dest)?;
        let me = self.me();
        let target = self.proc_state(dest_proc);
        let virtual_len = payload.virtual_len;
        let msg = MpiMsg { comm: self.comm, src_rank: self.rank(), tag, payload };
        self.uni.state.net.send(
            &self.uni.state.stack,
            me.node,
            target.mailbox,
            Payload::control(msg, virtual_len),
        );
        Ok(())
    }

    /// Nonblocking send. With the fabric's buffered semantics it completes
    /// immediately; provided for API fidelity.
    pub fn isend(&self, dest: u32, tag: u64, payload: Payload) -> Result<Request, MpiError> {
        self.send(dest, tag, payload)?;
        Ok(Request::complete())
    }

    /// Blocking matched receive.
    pub fn recv(&self, src: Option<u32>, tag: Option<u64>) -> Result<(Payload, Status), MpiError> {
        let me = self.me();
        let msg = me.store.recv(Matcher { comm: self.comm, src, tag })?;
        Ok((
            msg.payload.clone(),
            Status { source: msg.src_rank, tag: msg.tag, len: msg.payload.virtual_len },
        ))
    }

    /// Blocking matched receive with a relative timeout (ns).
    pub fn recv_timeout(
        &self,
        src: Option<u32>,
        tag: Option<u64>,
        timeout: u64,
    ) -> Result<(Payload, Status), MpiError> {
        let me = self.me();
        let msg = me.store.recv_timeout(Matcher { comm: self.comm, src, tag }, timeout)?;
        Ok((
            msg.payload.clone(),
            Status { source: msg.src_rank, tag: msg.tag, len: msg.payload.virtual_len },
        ))
    }

    /// Nonblocking receive: posts a slot in the process's message store and
    /// returns a [`Request`]. Posting *reserves* the match — once a message
    /// matches (at post time or on arrival), it is pinned to this request:
    /// invisible to other receives, guaranteed to be what `wait` returns.
    pub fn irecv(&self, src: Option<u32>, tag: Option<u64>) -> Request {
        let me = self.me();
        let id = me.store.post_recv(Matcher { comm: self.comm, src, tag });
        Request::recv(self.clone(), id)
    }

    /// Nonblocking probe (`MPI_Iprobe`). Charges the caller the polling CPU
    /// cost — the cost the Basic design pays in its selector loop (§VI-D).
    pub fn iprobe(&self, src: Option<u32>, tag: Option<u64>) -> Option<Status> {
        let me = self.me();
        self.uni.state.net.cpu(me.node).execute(IPROBE_CPU_NS);
        me.store.probe(Matcher { comm: self.comm, src, tag })
    }

    /// Blocking probe (`MPI_Probe`).
    pub fn probe(&self, src: Option<u32>, tag: Option<u64>) -> Result<Status, MpiError> {
        let me = self.me();
        me.store.probe_blocking(Matcher { comm: self.comm, src, tag })
    }

    /// Typed convenience: send a control value charged as `virtual_len`.
    pub fn send_value<T: std::any::Any + Send + Sync>(
        &self,
        dest: u32,
        tag: u64,
        value: T,
        virtual_len: u64,
    ) -> Result<(), MpiError> {
        self.send(dest, tag, Payload::control(value, virtual_len))
    }

    /// Typed convenience: receive a control value of type `T`.
    /// Panics when the matched message carries a different type — that is a
    /// protocol bug in the simulated program, not a runtime condition.
    pub fn recv_value<T: std::any::Any + Send + Sync>(
        &self,
        src: Option<u32>,
        tag: Option<u64>,
    ) -> Result<(Arc<T>, Status), MpiError> {
        let (payload, status) = self.recv(src, tag)?;
        let v = payload.value_as::<T>().expect("typed receive matched a payload of another type");
        Ok((v, status))
    }

    /// Allocate the next collective sequence number for this communicator.
    pub(crate) fn next_coll_seq(&self) -> u64 {
        let me = self.me();
        let mut m = me.coll_seq.lock();
        let c = m.entry(self.comm).or_insert(0);
        let v = *c;
        *c += 1;
        v
    }
}

impl std::fmt::Debug for Comm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Comm").field("comm", &self.comm).field("proc", &self.proc).finish()
    }
}

/// A nonblocking-operation handle.
///
/// Receive requests own a posted slot in the process's message store: the
/// match is *reserved* at post/arrival time, so an observation by [`test`]
/// (or a batched sweep) can never be re-matched away before [`wait`]. A
/// request dropped without `wait`/`cancel` releases its slot (without a
/// drain); any pinned message is discarded.
pub struct Request {
    kind: RequestKind,
}

enum RequestKind {
    Complete,
    Recv {
        comm: Comm,
        id: ReqId,
        /// Slot already consumed (waited, cancelled, or attached)?
        done: bool,
    },
}

impl Request {
    fn complete() -> Request {
        Request { kind: RequestKind::Complete }
    }

    fn recv(comm: Comm, id: ReqId) -> Request {
        Request { kind: RequestKind::Recv { comm, id, done: false } }
    }

    fn msg_result(msg: MpiMsg) -> Option<(Payload, Status)> {
        let status = Status { source: msg.src_rank, tag: msg.tag, len: msg.payload.virtual_len };
        Some((msg.payload, status))
    }

    /// Block until the operation completes; receives return their payload.
    /// Event-driven (woken by arrival): blocking here charges no polling
    /// CPU, unlike `test`/[`testsome`] sweeps.
    pub fn wait(mut self) -> Result<Option<(Payload, Status)>, MpiError> {
        match &mut self.kind {
            RequestKind::Complete => Ok(None),
            RequestKind::Recv { comm, id, done } => {
                let store = comm.me().store.clone();
                let r = store.req_wait(*id);
                *done = true; // slot is consumed on Ok and on Finalized alike
                r.map(Self::msg_result)
            }
        }
    }

    /// [`wait`](Request::wait) bounded by a relative timeout. On timeout the
    /// receive is cancelled *with a drain*: if the message later arrives it
    /// is absorbed instead of leaking into the unexpected-message queue.
    pub fn wait_timeout(mut self, timeout: u64) -> Result<Option<(Payload, Status)>, MpiError> {
        match &mut self.kind {
            RequestKind::Complete => Ok(None),
            RequestKind::Recv { comm, id, done } => {
                let store = comm.me().store.clone();
                let deadline = simt::now().saturating_add(timeout);
                let r = store.req_wait_deadline(*id, deadline);
                if matches!(r, Err(MpiError::Timeout)) {
                    store.cancel_recv(*id, true);
                }
                *done = true;
                r.map(Self::msg_result)
            }
        }
    }

    /// Nonblocking completion test: one sweep, one `iprobe`-equivalent CPU
    /// charge. A `true` result is stable — the matched message is pinned to
    /// this request and `wait` will return exactly it.
    pub fn test(&self) -> bool {
        match &self.kind {
            RequestKind::Complete => true,
            RequestKind::Recv { comm, id, .. } => {
                let me = comm.me();
                comm.uni.state.net.cpu(me.node).execute(IPROBE_CPU_NS);
                me.store.req_test(*id)
            }
        }
    }

    /// Abandon the operation. For a still-pending receive, `drain` installs
    /// a one-shot absorber so the in-flight message is dropped on arrival
    /// rather than stored forever.
    pub fn cancel(mut self, drain: bool) {
        if let RequestKind::Recv { comm, id, done } = &mut self.kind {
            comm.me().store.cancel_recv(*id, drain);
            *done = true;
        }
    }

    /// Hand this receive to a [`CompletionSet`] under caller token `user`;
    /// completion is then observed via [`CompletionSet::wait_next`].
    /// Panics for send requests (they complete at post time).
    pub fn attach(mut self, set: &CompletionSet, user: u64) {
        match &mut self.kind {
            RequestKind::Complete => panic!("only receive requests can join a CompletionSet"),
            RequestKind::Recv { comm, id, done } => {
                set.add(&comm.me().store, *id, user);
                *done = true;
            }
        }
    }

    /// Completion status without the CPU charge (internal batch sweeps pay
    /// one charge for the whole batch instead).
    fn is_done_unbilled(&self) -> bool {
        match &self.kind {
            RequestKind::Complete => true,
            RequestKind::Recv { comm, id, .. } => comm.me().store.req_test(*id),
        }
    }

    /// Arrival-order sequence of a completed receive (`None` while pending;
    /// sends have no arrival and return `None`).
    fn completion_seq(&self) -> Option<u64> {
        match &self.kind {
            RequestKind::Complete => None,
            RequestKind::Recv { comm, id, .. } => comm.me().store.req_completion_seq(*id),
        }
    }

    fn is_complete_send(&self) -> bool {
        matches!(self.kind, RequestKind::Complete)
    }

    fn store(&self) -> Option<crate::proc::MsgStore> {
        match &self.kind {
            RequestKind::Complete => None,
            RequestKind::Recv { comm, .. } => Some(comm.me().store.clone()),
        }
    }

    fn charge_sweep(&self) {
        if let RequestKind::Recv { comm, .. } = &self.kind {
            let me = comm.me();
            comm.uni.state.net.cpu(me.node).execute(IPROBE_CPU_NS);
        }
    }
}

impl Drop for Request {
    fn drop(&mut self) {
        if let RequestKind::Recv { comm, id, done: false } = &self.kind {
            comm.me().store.cancel_recv(*id, false);
        }
    }
}

/// `MPI_Waitall`: complete every request, returning results in request
/// order. Because matching is reserved at post/arrival time, completing the
/// batch sequentially is *exactly* equivalent (payloads and virtual
/// timestamps) to any batched completion order — blocking waits are
/// event-driven and charge no CPU, and each request's message is already
/// pinned to it. (Pinned by a property test in `tests/request_props.rs`.)
pub fn waitall(reqs: Vec<Request>) -> Result<Vec<Option<(Payload, Status)>>, MpiError> {
    reqs.into_iter().map(Request::wait).collect()
}

/// `MPI_Waitany`: block until some request in `reqs` completes, remove it,
/// and return `(original_index, result)`. Completed sends win first (lowest
/// index); among ready receives the one whose message *arrived earliest*
/// wins — a pure function of virtual time + post order, replay-stable.
/// Panics on an empty vector.
pub fn waitany(reqs: &mut Vec<Request>) -> Result<(usize, Option<(Payload, Status)>), MpiError> {
    assert!(!reqs.is_empty(), "waitany on an empty request set");
    loop {
        let tok = simt::engine::wait_token();
        // Register before sweeping: an arrival between sweep and park still
        // wakes us; stale tokens are rejected by epoch.
        let mut any_open = false;
        for st in reqs.iter().filter_map(Request::store) {
            st.add_waiter(tok.clone());
            any_open |= !st.is_closed();
        }
        if let Some(i) = reqs.iter().position(Request::is_complete_send) {
            return reqs.remove(i).wait().map(|r| (i, r));
        }
        let ready = reqs
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.completion_seq().map(|seq| (seq, i)))
            .min();
        if let Some((_, i)) = ready {
            return reqs.remove(i).wait().map(|r| (i, r));
        }
        if !any_open {
            return Err(MpiError::Finalized);
        }
        simt::engine::park();
    }
}

/// `MPI_Testsome`: one completion sweep over the batch — a single
/// `iprobe`-equivalent CPU charge regardless of batch size. Every
/// currently-complete request is removed and returned as
/// `(original_index, result)`, in index order; pending ones stay put.
pub fn testsome(
    reqs: &mut Vec<Request>,
) -> Result<Vec<(usize, Option<(Payload, Status)>)>, MpiError> {
    if let Some(r) = reqs.iter().find(|r| !r.is_complete_send()) {
        r.charge_sweep();
    }
    let ready: Vec<usize> =
        reqs.iter().enumerate().filter(|(_, r)| r.is_done_unbilled()).map(|(i, _)| i).collect();
    let mut out = Vec::with_capacity(ready.len());
    for (removed, i) in ready.into_iter().enumerate() {
        out.push((i, reqs.remove(i - removed).wait()?));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::launch::mpiexec;
    use fabric::{ClusterSpec, Net};

    fn run_ranks(nodes: usize, ranks: usize, f: impl Fn(Comm) + Send + Sync + 'static) {
        let sim = simt::Sim::new();
        let placements: Vec<usize> = (0..ranks).map(|i| i % nodes).collect();
        sim.spawn("launcher", move || {
            let net = Net::new(&ClusterSpec::test(nodes));
            mpiexec(&net, &placements, f);
        });
        sim.run().unwrap().assert_clean();
    }

    fn store_of(comm: &Comm) -> crate::proc::MsgStore {
        comm.me().store.clone()
    }

    /// The old `Request::test` was a bare iprobe and `wait` re-ran matching:
    /// with a `src: None` wildcard, `test` could observe one message while a
    /// competing receive consumed it, leaving `wait` to return a *different*
    /// message. Reservation closes this: the match `test` observes is pinned.
    #[test]
    fn test_pins_wildcard_match_for_wait() {
        const TAG: u64 = 77;
        run_ranks(2, 3, |comm| match comm.rank() {
            0 => comm.send_value(2, TAG, 0u32, 8).unwrap(),
            1 => {
                simt::sleep(50_000);
                comm.send_value(2, TAG, 1u32, 8).unwrap();
            }
            _ => {
                simt::sleep(200_000); // both messages have arrived
                let req = comm.irecv(None, Some(TAG));
                assert!(req.test(), "first arrival is pinned at post time");
                // A competing exact receive for the pinned sender must NOT
                // steal the reserved message.
                let r = comm.recv_timeout(Some(0), Some(TAG), 10_000);
                assert_eq!(r.err(), Some(MpiError::Timeout));
                // And wait() returns exactly what test() observed.
                let (payload, st) = req.wait().unwrap().unwrap();
                assert_eq!(st.source, 0);
                assert_eq!(*payload.value_as::<u32>().unwrap(), 0);
                // The other sender's message is still receivable.
                let (v, st) = comm.recv_value::<u32>(Some(1), Some(TAG)).unwrap();
                assert_eq!((st.source, *v), (1, 1));
            }
        });
    }

    /// Regression for the stale-body leak: flood timeouts, then let every
    /// "late body" arrive — the drains must absorb all of them so the
    /// unexpected-message queue stays empty.
    #[test]
    fn timed_out_receives_drain_late_arrivals() {
        const N: u64 = 48;
        run_ranks(2, 2, |comm| {
            if comm.rank() == 0 {
                // All bodies are late: sent long after the receiver timed out.
                simt::sleep(1_000_000);
                for i in 0..N {
                    comm.send_value(1, 1000 + i, i, 64).unwrap();
                }
            } else {
                let store = store_of(&comm);
                for i in 0..N {
                    let req = comm.irecv(Some(0), Some(1000 + i));
                    assert_eq!(req.wait_timeout(2_000).err(), Some(MpiError::Timeout));
                }
                assert_eq!(store.posted_len(), 0, "timeouts released their slots");
                assert_eq!(store.drain_len(), N as usize, "one drain per timed-out receive");
                simt::sleep(5_000_000); // all late bodies have landed
                assert_eq!(store.len(), 0, "late bodies were absorbed, not stored");
                assert_eq!(store.drain_len(), 0, "each drain consumed exactly once");
            }
        });
    }

    #[test]
    fn waitany_returns_earliest_arrival() {
        run_ranks(2, 3, |comm| match comm.rank() {
            0 => {
                simt::sleep(30_000);
                comm.send_value(2, 1, 10u32, 8).unwrap();
            }
            1 => {
                simt::sleep(10_000);
                comm.send_value(2, 2, 20u32, 8).unwrap();
            }
            _ => {
                let mut reqs = vec![comm.irecv(Some(0), Some(1)), comm.irecv(Some(1), Some(2))];
                let (i, r) = waitany(&mut reqs).unwrap();
                // Rank 1's message arrives first even though its request was
                // posted second.
                assert_eq!(i, 1);
                assert_eq!(*r.unwrap().0.value_as::<u32>().unwrap(), 20);
                let (i, r) = waitany(&mut reqs).unwrap();
                assert_eq!(i, 0);
                assert_eq!(*r.unwrap().0.value_as::<u32>().unwrap(), 10);
                assert!(reqs.is_empty());
            }
        });
    }

    #[test]
    fn testsome_removes_ready_and_charges_once() {
        run_ranks(2, 2, |comm| {
            if comm.rank() == 0 {
                comm.send_value(1, 5, 1u32, 8).unwrap();
                simt::sleep(100_000);
                comm.send_value(1, 6, 2u32, 8).unwrap();
            } else {
                simt::sleep(50_000); // tag 5 arrived, tag 6 not yet
                let mut reqs = vec![comm.irecv(Some(0), Some(5)), comm.irecv(Some(0), Some(6))];
                let done = testsome(&mut reqs).unwrap();
                assert_eq!(done.len(), 1);
                assert_eq!(done[0].0, 0);
                assert_eq!(reqs.len(), 1);
                // The remaining request completes on arrival.
                let (i, r) = waitany(&mut reqs).unwrap();
                assert_eq!(i, 0);
                assert_eq!(*r.unwrap().0.value_as::<u32>().unwrap(), 2);
            }
        });
    }

    #[test]
    fn waitall_returns_results_in_request_order() {
        run_ranks(2, 2, |comm| {
            if comm.rank() == 0 {
                // Send in reverse tag order with staggered delays.
                for tag in [3u64, 2, 1] {
                    simt::sleep(10_000);
                    comm.send_value(1, tag, tag, 8).unwrap();
                }
            } else {
                let reqs: Vec<Request> = (1..=3).map(|t| comm.irecv(Some(0), Some(t))).collect();
                let out = waitall(reqs).unwrap();
                let tags: Vec<u64> = out.iter().map(|r| r.as_ref().unwrap().1.tag).collect();
                assert_eq!(tags, vec![1, 2, 3], "request order, not arrival order");
            }
        });
    }
}
