//! Communicator handles and point-to-point operations.

use std::sync::Arc;

use fabric::Payload;

use crate::launch::Universe;
use crate::proc::{CommInfo, Matcher, MpiMsg, ProcState, IPROBE_CPU_NS};
use crate::types::{CommId, MpiError, ProcId, Status};

/// A communicator handle bound to one calling process. Cheap to clone;
/// clones may be used from any green thread belonging to that process
/// (Netty event loops, executor task slots, ...).
#[derive(Clone)]
pub struct Comm {
    uni: Universe,
    comm: CommId,
    proc: ProcId,
}

impl Comm {
    pub(crate) fn new(uni: Universe, comm: CommId, proc: ProcId) -> Comm {
        Comm { uni, comm, proc }
    }

    fn info(&self) -> Arc<CommInfo> {
        self.uni.state.comms.lock().get(&self.comm).expect("communicator exists").clone()
    }

    fn me(&self) -> Arc<ProcState> {
        self.uni.state.procs.lock().get(&self.proc).expect("process exists").clone()
    }

    fn proc_state(&self, p: ProcId) -> Arc<ProcState> {
        self.uni.state.procs.lock().get(&p).expect("process exists").clone()
    }

    /// The universe this communicator belongs to.
    pub fn universe(&self) -> &Universe {
        &self.uni
    }

    /// Communicator id.
    pub fn id(&self) -> CommId {
        self.comm
    }

    /// This process's id.
    pub fn proc_id(&self) -> ProcId {
        self.proc
    }

    /// Node the calling process runs on.
    pub fn node(&self) -> fabric::NodeId {
        self.me().node
    }

    /// Rank of the calling process (within its group, for intercomms).
    pub fn rank(&self) -> u32 {
        self.info().local_rank(self.proc).expect("caller is a member")
    }

    /// Local group size.
    pub fn size(&self) -> u32 {
        self.info().local_size(self.proc) as u32
    }

    /// Remote group size (== `size()` for intracommunicators).
    pub fn remote_size(&self) -> u32 {
        self.info().remote_size(self.proc) as u32
    }

    /// True when this is an intercommunicator.
    pub fn is_inter(&self) -> bool {
        matches!(self.info().groups, crate::proc::CommGroups::Inter { .. })
    }

    /// Blocking (buffered) send to `dest` with `tag`.
    ///
    /// Returns once the send-side software cost is paid — the message is
    /// buffered by the fabric, matching an eager/buffered-mode MPI send.
    pub fn send(&self, dest: u32, tag: u64, payload: Payload) -> Result<(), MpiError> {
        let info = self.info();
        let dest_proc = info.resolve_dest(self.proc, dest)?;
        let me = self.me();
        let target = self.proc_state(dest_proc);
        let virtual_len = payload.virtual_len;
        let msg = MpiMsg { comm: self.comm, src_rank: self.rank(), tag, payload };
        self.uni.state.net.send(
            &self.uni.state.stack,
            me.node,
            target.mailbox,
            Payload::control(msg, virtual_len),
        );
        Ok(())
    }

    /// Nonblocking send. With the fabric's buffered semantics it completes
    /// immediately; provided for API fidelity.
    pub fn isend(&self, dest: u32, tag: u64, payload: Payload) -> Result<Request, MpiError> {
        self.send(dest, tag, payload)?;
        Ok(Request::complete())
    }

    /// Blocking matched receive.
    pub fn recv(&self, src: Option<u32>, tag: Option<u64>) -> Result<(Payload, Status), MpiError> {
        let me = self.me();
        let msg = me.store.recv(Matcher { comm: self.comm, src, tag })?;
        Ok((
            msg.payload.clone(),
            Status { source: msg.src_rank, tag: msg.tag, len: msg.payload.virtual_len },
        ))
    }

    /// Blocking matched receive with a relative timeout (ns).
    pub fn recv_timeout(
        &self,
        src: Option<u32>,
        tag: Option<u64>,
        timeout: u64,
    ) -> Result<(Payload, Status), MpiError> {
        let me = self.me();
        let msg = me.store.recv_timeout(Matcher { comm: self.comm, src, tag }, timeout)?;
        Ok((
            msg.payload.clone(),
            Status { source: msg.src_rank, tag: msg.tag, len: msg.payload.virtual_len },
        ))
    }

    /// Nonblocking receive: a [`Request`] that resolves on `wait`.
    /// (Progress happens in the pump regardless, so deferring the match to
    /// `wait` is observationally equivalent — documented deviation.)
    pub fn irecv(&self, src: Option<u32>, tag: Option<u64>) -> Request {
        Request::pending(self.clone(), src, tag)
    }

    /// Nonblocking probe (`MPI_Iprobe`). Charges the caller the polling CPU
    /// cost — the cost the Basic design pays in its selector loop (§VI-D).
    pub fn iprobe(&self, src: Option<u32>, tag: Option<u64>) -> Option<Status> {
        let me = self.me();
        self.uni.state.net.cpu(me.node).execute(IPROBE_CPU_NS);
        me.store.probe(Matcher { comm: self.comm, src, tag })
    }

    /// Blocking probe (`MPI_Probe`).
    pub fn probe(&self, src: Option<u32>, tag: Option<u64>) -> Result<Status, MpiError> {
        let me = self.me();
        me.store.probe_blocking(Matcher { comm: self.comm, src, tag })
    }

    /// Typed convenience: send a control value charged as `virtual_len`.
    pub fn send_value<T: std::any::Any + Send + Sync>(
        &self,
        dest: u32,
        tag: u64,
        value: T,
        virtual_len: u64,
    ) -> Result<(), MpiError> {
        self.send(dest, tag, Payload::control(value, virtual_len))
    }

    /// Typed convenience: receive a control value of type `T`.
    /// Panics when the matched message carries a different type — that is a
    /// protocol bug in the simulated program, not a runtime condition.
    pub fn recv_value<T: std::any::Any + Send + Sync>(
        &self,
        src: Option<u32>,
        tag: Option<u64>,
    ) -> Result<(Arc<T>, Status), MpiError> {
        let (payload, status) = self.recv(src, tag)?;
        let v = payload.value_as::<T>().expect("typed receive matched a payload of another type");
        Ok((v, status))
    }

    /// Allocate the next collective sequence number for this communicator.
    pub(crate) fn next_coll_seq(&self) -> u64 {
        let me = self.me();
        let mut m = me.coll_seq.lock();
        let c = m.entry(self.comm).or_insert(0);
        let v = *c;
        *c += 1;
        v
    }
}

impl std::fmt::Debug for Comm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Comm").field("comm", &self.comm).field("proc", &self.proc).finish()
    }
}

/// A nonblocking-operation handle.
pub struct Request {
    kind: RequestKind,
}

enum RequestKind {
    Complete,
    PendingRecv { comm: Comm, src: Option<u32>, tag: Option<u64> },
}

impl Request {
    fn complete() -> Request {
        Request { kind: RequestKind::Complete }
    }

    fn pending(comm: Comm, src: Option<u32>, tag: Option<u64>) -> Request {
        Request { kind: RequestKind::PendingRecv { comm, src, tag } }
    }

    /// Block until the operation completes; receives return their payload.
    pub fn wait(self) -> Result<Option<(Payload, Status)>, MpiError> {
        match self.kind {
            RequestKind::Complete => Ok(None),
            RequestKind::PendingRecv { comm, src, tag } => comm.recv(src, tag).map(Some),
        }
    }

    /// Nonblocking completion test.
    pub fn test(&self) -> bool {
        match &self.kind {
            RequestKind::Complete => true,
            RequestKind::PendingRecv { comm, src, tag } => comm.iprobe(*src, *tag).is_some(),
        }
    }
}
