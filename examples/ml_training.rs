//! Distributed ML training (HiBench-style): logistic regression and a
//! Gaussian mixture EM running on the RDD API under MPI4Spark, with
//! per-iteration loss reported.
//!
//! ```text
//! cargo run --release --example ml_training
//! ```

use sparklet::deploy::ClusterConfig;
use sparklet::SparkConf;
use workloads::ml::{gmm_app, lr_app, MlConfig};
use workloads::System;

fn main() {
    let spec = fabric::ClusterSpec::test(5);
    let conf = SparkConf::paper_defaults(4);
    let cfg = MlConfig {
        partitions: 12,
        samples_per_partition: 200,
        virtual_samples_per_partition: 200,
        dim: 8,
        iterations: 8,
        agg_partitions: 4,
        pad_bytes: 8192,
        seed: 7,
    };

    let cluster = ClusterConfig::paper_layout(spec.len(), conf);
    let out = System::Mpi4Spark.run(&spec, cluster, move |sc| lr_app(sc, cfg));
    println!("Logistic regression under MPI4Spark:");
    for (i, loss) in out.result.loss_history.iter().enumerate() {
        println!("  iteration {i}: loss = {loss:.4}");
    }
    assert!(
        out.result.loss_history.last().unwrap() < out.result.loss_history.first().unwrap(),
        "training must make progress"
    );

    let cluster = ClusterConfig::paper_layout(spec.len(), conf);
    let out = System::Mpi4Spark.run(&spec, cluster, move |sc| gmm_app(sc, cfg, 2));
    println!("\nGaussian mixture (k=2) under MPI4Spark:");
    for (i, nll) in out.result.loss_history.iter().enumerate() {
        println!("  iteration {i}: -loglik = {nll:.4}");
    }
    println!("\n{} jobs ran (datagen + one aggregate shuffle per iteration).", out.jobs.len());
}
