//! Quickstart: run the same Spark job under Vanilla Spark and MPI4Spark on
//! a simulated 5-node cluster and compare shuffle-read times.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use fabric::ClusterSpec;
use sparklet::deploy::{simulate, ClusterConfig, ProcessBuilderLauncher};
use sparklet::{Blob, SparkConf, VanillaBackend};
use workloads::System;

fn main() {
    // A 5-node cluster: 3 workers + master + driver, 4 cores each.
    let spec = ClusterSpec::test(5);
    let mut conf = SparkConf::default();
    conf.executor_cores = 4;

    // The workload: generate keyed blobs, group by key, count the groups.
    let workload = |sc: &sparklet::scheduler::SparkContext| {
        let pairs: Vec<(u64, Blob)> =
            (0..240u64).map(|i| (i % 40, Blob::new(i, 1 << 18))).collect();
        sc.parallelize(pairs, 12).group_by_key(12).count()
    };

    // --- Vanilla Spark: Netty NIO over sockets --------------------------
    let cluster = ClusterConfig::paper_layout(spec.len(), conf);
    let (groups, jobs) = simulate(
        &spec,
        cluster.clone(),
        Arc::new(VanillaBackend::default()),
        Arc::new(ProcessBuilderLauncher),
        workload,
    );
    let read_vanilla = jobs[0].stage_duration("ResultStage").unwrap();
    println!("Vanilla Spark : {groups} groups, shuffle read {:.2} ms", read_vanilla as f64 / 1e6);

    // --- MPI4Spark: wrapper launch, DPM executors, MPI-based Netty -------
    let out = System::Mpi4Spark.run(&spec, cluster, workload);
    let read_mpi = out.jobs[0].stage_duration("ResultStage").unwrap();
    println!("MPI4Spark     : {} groups, shuffle read {:.2} ms", out.result, read_mpi as f64 / 1e6);
    println!("Shuffle-read speedup: {:.2}x", read_vanilla as f64 / read_mpi as f64);
    assert_eq!(groups, out.result, "both systems must compute identical results");
}
