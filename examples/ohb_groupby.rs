//! OHB GroupByTest with the paper's Fig. 10 stage breakdown, run on a
//! scaled-down Frontera-like cluster under all three systems.
//!
//! ```text
//! cargo run --release --example ohb_groupby
//! ```

use sparklet::deploy::ClusterConfig;
use sparklet::SparkConf;
use workloads::ohb::{group_by_app, OhbConfig, StageBreakdown};
use workloads::System;

fn main() {
    let workers = 4;
    let cores = 8;
    let spec = fabric::ClusterSpec::frontera(workers + 2);
    let cfg = OhbConfig::paper(workers, cores, 2); // 2 GiB per worker

    println!(
        "OHB GroupByTest: {} partitions, {:.1} GB total",
        cfg.partitions,
        cfg.total_bytes() as f64 / 1e9
    );
    println!(
        "{:>8}  {:>11} {:>10} {:>9} {:>9}  {:>13}",
        "system", "datagen(ms)", "write(ms)", "read(ms)", "total(s)", "read-speedup"
    );

    let mut vanilla_read = None;
    for system in System::available_on(&spec) {
        let conf = SparkConf::paper_defaults(cores);
        let cluster = ClusterConfig::paper_layout(spec.len(), conf);
        let out = system.run(&spec, cluster, move |sc| group_by_app(sc, cfg));
        let b = StageBreakdown::from_jobs(&out.jobs);
        let base = *vanilla_read.get_or_insert(b.shuffle_read_ns);
        println!(
            "{:>8}  {:>11.1} {:>10.1} {:>9.1} {:>9.2}  {:>12.2}x",
            system.label(),
            b.datagen_ns as f64 / 1e6,
            b.shuffle_write_ns as f64 / 1e6,
            b.shuffle_read_ns as f64 / 1e6,
            out.total_ns() as f64 / 1e9,
            base as f64 / b.shuffle_read_ns as f64,
        );
    }
}
