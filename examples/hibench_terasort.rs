//! HiBench TeraSort on a simulated cluster: sort, validate ordering, and
//! show why TeraSort is near-parity across transports (HDFS output I/O
//! dominates) while pure-shuffle workloads are not.
//!
//! ```text
//! cargo run --release --example hibench_terasort
//! ```

use sparklet::deploy::ClusterConfig;
use sparklet::SparkConf;
use workloads::micro::{repartition_app, terasort_app, MicroConfig};
use workloads::System;

fn main() {
    let workers = 4;
    let cores = 8;
    let spec = fabric::ClusterSpec::frontera(workers + 2);
    let cfg = MicroConfig::huge(workers, cores, 4); // 4 GiB total

    println!("workload      system   total(s)   speedup");
    for (name, app) in [
        ("TeraSort", terasort_app as fn(&sparklet::scheduler::SparkContext, MicroConfig) -> u64),
        ("Repartition", repartition_app),
    ] {
        let mut base = None;
        for system in [System::Vanilla, System::Mpi4Spark] {
            let conf = SparkConf::paper_defaults(cores);
            let cluster = ClusterConfig::paper_layout(spec.len(), conf);
            let out = system.run(&spec, cluster, move |sc| app(sc, cfg));
            let total = out.total_ns();
            let b = *base.get_or_insert(total);
            println!(
                "{name:12}  {:>6}   {:>7.2}   {:>6.2}x   ({} records)",
                system.label(),
                total as f64 / 1e9,
                b as f64 / total as f64,
                out.result
            );
        }
    }
    println!(
        "\nTeraSort's speedup is small (disk-bound); Repartition's is larger (network-bound)."
    );
}
