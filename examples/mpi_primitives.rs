//! The MPI substrate by itself: SPMD launch, point-to-point messaging,
//! collectives, and Dynamic Process Management — the facilities MPI4Spark's
//! launcher builds on (paper §V, Fig. 3).
//!
//! ```text
//! cargo run --release --example mpi_primitives
//! ```

use fabric::{ClusterSpec, Net};
use rmpi::{mpiexec, Comm, SpawnSpec};
use simt::Sim;

fn main() {
    let sim = Sim::new();
    sim.spawn("launcher", || {
        let net = Net::new(&ClusterSpec::internal(2));
        // Step A (paper Fig. 3): launch 4 wrapper ranks.
        mpiexec(&net, &[0, 1, 0, 1], |world: Comm| {
            let rank = world.rank();

            // Point-to-point ring.
            let next = (rank + 1) % world.size();
            let prev = (rank + world.size() - 1) % world.size();
            world.send_value(next, 7, format!("hello from {rank}"), 64).unwrap();
            let (msg, st) = world.recv_value::<String>(Some(prev), Some(7)).unwrap();
            println!(
                "rank {rank} received '{msg}' (src={}, t={})",
                st.source,
                simt::time::fmt_duration(simt::now())
            );

            // Collective: allgather, as used to exchange executor specs.
            let all = world.allgather(rank * 10, 8).unwrap();
            assert_eq!(all, vec![0, 10, 20, 30]);

            // Step C: rank 0 supplies DPM specs; everyone spawns together.
            let specs = (rank == 0).then(|| {
                (0..2)
                    .map(|i| {
                        SpawnSpec::new(format!("executor-{i}"), i % 2, move |dpm: Comm| {
                            let parent = dpm.parent().unwrap();
                            println!(
                                "  executor {}/{} spawned (parents: {})",
                                dpm.rank(),
                                dpm.size(),
                                parent.remote_size()
                            );
                            // Executors shuffle over DPM_COMM.
                            let sum =
                                dpm.allreduce(u64::from(dpm.rank()) + 1, 8, |a, b| a + b).unwrap();
                            assert_eq!(sum, 3);
                        })
                    })
                    .collect()
            });
            let inter = world.spawn_multiple(0, specs).unwrap();
            assert_eq!(inter.remote_size(), 2);
        });
    });
    sim.run().unwrap().assert_clean();
    println!("done at virtual t = {}", simt::time::fmt_duration(sim.now()));
}
