//! Seed-replay harness for the chaos layer: flap every worker↔worker link
//! across the shuffle-read stage of an OHB-style GroupBy and verify the
//! result on all four systems. The entire run — fault windows, retry
//! timing, results — is a pure function of the seed, so any failure found
//! by a randomized run is replayed exactly by passing the printed seed back:
//!
//! ```text
//! cargo run --release --example chaos_replay -- --chaos-seed 31337
//! CHAOS_SEED=31337 cargo run --release --example chaos_replay
//! ```

use fabric::{ClusterSpec, FaultPlan};
use sparklet::deploy::ClusterConfig;
use sparklet::scheduler::SparkContext;
use sparklet::SparkConf;
use workloads::System;

const MS: u64 = 1_000_000;
const WORKERS: [usize; 3] = [0, 1, 2];

fn conf() -> SparkConf {
    let mut conf = SparkConf::default();
    conf.executor_cores = 4;
    conf.cost.task_overhead_ns = 10_000;
    conf.merge_chunks_per_request = false;
    conf.connect_timeout_ns = 50 * MS;
    conf.request_timeout_ns = 200 * MS;
    conf.fetch_timeout_ns = 300 * MS;
    conf.fetch_max_retries = 8;
    conf.fetch_retry_base_ns = 20 * MS;
    conf.fetch_retry_max_ns = 200 * MS;
    conf
}

fn groupby(sc: &SparkContext) -> Vec<(u64, Vec<u64>)> {
    let pairs: Vec<(u64, u64)> = (0..400u64).map(|i| (i % 23, i)).collect();
    let mut groups = sc.parallelize(pairs, 9).group_by_key(9).collect();
    groups.sort_by_key(|(k, _)| *k);
    groups.iter_mut().for_each(|(_, v)| v.sort_unstable());
    groups
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed: u64 = args
        .iter()
        .position(|a| a == "--chaos-seed")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .or_else(|| std::env::var("CHAOS_SEED").ok())
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(0xC0FFEE);
    println!("chaos replay: seed {seed}");

    let spec = ClusterSpec::test(5);
    let oracle: Vec<(u64, Vec<u64>)> =
        (0..23u64).map(|k| (k, (0..400u64).filter(|i| i % 23 == k).collect())).collect();

    println!(
        "{:>10}  {:>9} {:>9} {:>8} {:>10}",
        "system", "dropped", "delayed", "retries", "total(ms)"
    );
    let mut failed = false;
    for system in [System::Vanilla, System::RdmaSpark, System::Mpi4SparkBasic, System::Mpi4Spark] {
        // Fault-free run to find the shuffle-read window on this system.
        let clean = system.run(&spec, ClusterConfig::paper_layout(spec.len(), conf()), groupby);
        let stage = clean
            .jobs
            .iter()
            .flat_map(|j| j.stages.iter())
            .find(|s| s.name == "Job0-ResultStage")
            .expect("groupby has a result stage");
        let (start, dur) = (stage.start_ns, (stage.end_ns - stage.start_ns).max(1_000));

        let mut plan = FaultPlan::seeded(seed);
        for (i, &a) in WORKERS.iter().enumerate() {
            for &b in &WORKERS[i + 1..] {
                plan = plan.flap_link(a, b, start, (dur / 3).max(8), (dur / 6).max(2), 6);
            }
        }
        let out = system.run_with_chaos(
            &spec,
            ClusterConfig::paper_layout(spec.len(), conf()),
            plan.build(),
            groupby,
        );
        let ok = out.result == oracle;
        failed |= !ok;
        println!(
            "{:>10}  {:>9} {:>9} {:>8} {:>10.2}  {}",
            system.label(),
            out.chaos_dropped(),
            out.chaos_delayed(),
            out.fetch_retries(),
            out.total_ns() as f64 / 1e6,
            if ok { "ok" } else { "WRONG RESULT" },
        );
    }
    if failed {
        eprintln!("replay with: cargo run --release --example chaos_replay -- --chaos-seed {seed}");
        std::process::exit(1);
    }
}
