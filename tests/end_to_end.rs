//! Workspace-level integration: the complete stack (simt → fabric → netz →
//! rmpi → sparklet → mpi4spark → workloads) exercised end to end, checking
//! functional equivalence across all four systems and the paper's headline
//! performance ordering.

use std::collections::HashMap;

use fabric::ClusterSpec;
use sparklet::deploy::ClusterConfig;
use sparklet::{Blob, SparkConf};
use workloads::ohb::{group_by_app, sort_by_app, OhbConfig, StageBreakdown};
use workloads::System;

fn conf() -> SparkConf {
    let mut conf = SparkConf::default();
    conf.executor_cores = 4;
    conf.cost.task_overhead_ns = 10_000;
    conf
}

fn all_systems() -> [System; 4] {
    [System::Vanilla, System::RdmaSpark, System::Mpi4SparkBasic, System::Mpi4Spark]
}

#[test]
fn groupby_results_identical_across_all_four_systems() {
    let spec = ClusterSpec::test(5);
    let mut outcomes = Vec::new();
    for system in all_systems() {
        let cluster = ClusterConfig::paper_layout(spec.len(), conf());
        let out = system.run(&spec, cluster, |sc| {
            let pairs: Vec<(u64, u64)> = (0..400u64).map(|i| (i % 23, i)).collect();
            let mut groups = sc.parallelize(pairs, 8).group_by_key(6).collect();
            groups.sort_by_key(|(k, _)| *k);
            groups.iter_mut().for_each(|(_, v)| v.sort_unstable());
            groups
        });
        outcomes.push((system.label(), out.result));
    }
    let mut oracle: HashMap<u64, Vec<u64>> = HashMap::new();
    for i in 0..400u64 {
        oracle.entry(i % 23).or_default().push(i);
    }
    for (label, groups) in outcomes {
        assert_eq!(groups.len(), 23, "{label}");
        for (k, vs) in &groups {
            assert_eq!(vs, &oracle[k], "{label}: key {k}");
        }
    }
}

#[test]
fn paper_performance_ordering_holds() {
    // The paper's central result at reduced scale: shuffle-read time
    // IPoIB > RDMA > MPI, and MPI-Basic slower than MPI-Optimized overall.
    let spec = ClusterSpec::frontera(4); // 2 workers
    let cfg = OhbConfig {
        partitions: 8,
        records_per_partition: 32,
        value_bytes: 1 << 18,
        key_range: 64,
        seed: 5,
    };
    let mut read = HashMap::new();
    let mut total = HashMap::new();
    for system in all_systems() {
        let cluster = ClusterConfig::paper_layout(spec.len(), conf());
        let out = system.run(&spec, cluster, move |sc| group_by_app(sc, cfg));
        let b = StageBreakdown::from_jobs(&out.jobs);
        read.insert(system.label(), b.shuffle_read_ns);
        total.insert(system.label(), out.total_ns());
    }
    assert!(read["IPoIB"] > read["RDMA"], "{read:?}");
    assert!(read["RDMA"] > read["MPI"], "{read:?}");
    assert!(total["MPI-Basic"] > total["MPI"], "{total:?}");
    assert!(total["IPoIB"] > total["MPI-Basic"], "{total:?}");
}

#[test]
fn sortby_is_totally_ordered_under_mpi() {
    let spec = ClusterSpec::test(5);
    let cluster = ClusterConfig::paper_layout(spec.len(), conf());
    let out = System::Mpi4Spark.run(&spec, cluster, |sc| {
        let pairs: Vec<(u64, Blob)> =
            (0..500u64).map(|i| ((i * 48271) % 9973, Blob::new(i, 512))).collect();
        sc.parallelize(pairs, 10).sort_by_key(7).collect()
    });
    let keys: Vec<u64> = out.result.iter().map(|(k, _)| *k).collect();
    let mut sorted = keys.clone();
    sorted.sort_unstable();
    assert_eq!(keys, sorted);
    assert_eq!(out.result.len(), 500);
}

#[test]
fn ohb_stage_names_match_paper_breakdown() {
    // GroupBy: Job0-ResultStage (datagen), Job1-ShuffleMapStage,
    // Job1-ResultStage. SortBy: sampling makes the action Job2 (paper
    // Fig. 10 naming).
    let spec = ClusterSpec::test(4);
    let cfg = OhbConfig {
        partitions: 6,
        records_per_partition: 16,
        value_bytes: 4096,
        key_range: 30,
        seed: 1,
    };

    let cluster = ClusterConfig::paper_layout(spec.len(), conf());
    let out = System::Mpi4Spark.run(&spec, cluster, move |sc| group_by_app(sc, cfg));
    let names: Vec<String> =
        out.jobs.iter().flat_map(|j| j.stages.iter().map(|s| s.name.clone())).collect();
    assert!(names.contains(&"Job0-ResultStage".to_string()), "{names:?}");
    assert!(names.contains(&"Job1-ShuffleMapStage".to_string()), "{names:?}");
    assert!(names.contains(&"Job1-ResultStage".to_string()), "{names:?}");

    let cluster = ClusterConfig::paper_layout(spec.len(), conf());
    let out = System::Mpi4Spark.run(&spec, cluster, move |sc| sort_by_app(sc, cfg));
    let names: Vec<String> =
        out.jobs.iter().flat_map(|j| j.stages.iter().map(|s| s.name.clone())).collect();
    assert!(names.contains(&"Job2-ShuffleMapStage".to_string()), "{names:?}");
    assert!(names.contains(&"Job2-ResultStage".to_string()), "{names:?}");
}

#[test]
fn whole_stack_is_deterministic() {
    fn once() -> (u64, u64) {
        let spec = ClusterSpec::frontera(4);
        let cfg = OhbConfig {
            partitions: 8,
            records_per_partition: 24,
            value_bytes: 1 << 14,
            key_range: 50,
            seed: 99,
        };
        let cluster = ClusterConfig::paper_layout(spec.len(), conf());
        let out = System::Mpi4Spark.run(&spec, cluster, move |sc| group_by_app(sc, cfg));
        (out.result, out.total_ns())
    }
    assert_eq!(once(), once(), "identical seeds must give identical results AND timings");
}

#[test]
fn rdma_spark_refuses_omni_path_like_the_paper() {
    // §VII-D: "RDMA-Spark numbers were not collected [on Stampede2] because
    // Stampede2 does not use IB interconnects."
    let stampede = ClusterSpec::stampede2(4);
    assert!(!System::available_on(&stampede).contains(&System::RdmaSpark));
    let result = std::panic::catch_unwind(|| rdma_spark::RdmaBackend::new(&stampede.interconnect));
    assert!(result.is_err());
}

#[test]
fn stampede2_cluster_runs_mpi4spark_with_hyperthreading() {
    let spec = ClusterSpec::stampede2(4); // 2 workers
    let mut c = conf();
    c.executor_cores = 8; // scaled-down stand-in for 96 threads
    let cluster = ClusterConfig::paper_layout(spec.len(), c);
    let out = System::Mpi4Spark.run(&spec, cluster, |sc| {
        let pairs: Vec<(u64, u64)> = (0..160u64).map(|i| (i % 13, i)).collect();
        sc.parallelize(pairs, 16).reduce_by_key(8, |a, b| a + b).count()
    });
    assert_eq!(out.result, 13);
}
