//! Property-based tests (proptest) over the stack's core invariants:
//! codecs round-trip, partitioners cover and stay stable, shuffles preserve
//! multisets, sorts order totally, the virtual clock never regresses, and
//! retried fetches decode identically to fault-free runs.

use std::collections::HashMap;

use proptest::prelude::*;
use sparklet::data::{decode_batch, encode_batch};
use sparklet::rdd::partitioner::{HashPartitioner, Partitioner, RangePartitioner};
use sparklet::Blob;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn element_batches_roundtrip(v in proptest::collection::vec((any::<u64>(), any::<u64>()), 0..200)) {
        let (bytes, virt) = encode_batch(&v);
        let back: Vec<(u64, u64)> = decode_batch(&bytes);
        prop_assert_eq!(back, v.clone());
        prop_assert_eq!(virt, 4 + 16 * v.len() as u64);
    }

    #[test]
    fn blob_batches_roundtrip(v in proptest::collection::vec((any::<u64>(), 0u32..10_000_000), 0..100)) {
        let blobs: Vec<Blob> = v.iter().map(|(s, l)| Blob::new(*s, *l)).collect();
        let (bytes, virt) = encode_batch(&blobs);
        let back: Vec<Blob> = decode_batch(&bytes);
        prop_assert_eq!(back, blobs.clone());
        let expected: u64 = 4 + blobs.iter().map(|b| u64::from(b.len)).sum::<u64>();
        prop_assert_eq!(virt, expected);
    }

    #[test]
    fn string_batches_roundtrip(v in proptest::collection::vec(".{0,40}", 0..50)) {
        let (bytes, _) = encode_batch(&v);
        let back: Vec<String> = decode_batch(&bytes);
        prop_assert_eq!(back, v);
    }

    #[test]
    fn hash_partitioner_in_range_and_stable(keys in proptest::collection::vec(any::<u64>(), 1..500), parts in 1usize..64) {
        let p = HashPartitioner::new(parts);
        for k in &keys {
            let a = Partitioner::<u64>::partition(&p, k);
            prop_assert!(a < parts);
            prop_assert_eq!(a, Partitioner::<u64>::partition(&p, k));
        }
    }

    #[test]
    fn range_partitioner_is_monotone(mut sample in proptest::collection::vec(any::<u64>(), 1..300), parts in 1usize..16, probes in proptest::collection::vec(any::<u64>(), 0..100)) {
        let p = RangePartitioner::from_sample(sample.clone(), parts);
        sample.sort_unstable();
        let mut probes = probes;
        probes.sort_unstable();
        let mut last = 0usize;
        for k in &probes {
            let part = p.partition(k);
            prop_assert!(part < p.num_partitions());
            prop_assert!(part >= last, "monotonicity violated");
            last = part;
        }
    }

    #[test]
    fn message_codec_roundtrips(request_id in any::<u64>(), stream in any::<u64>(), chunk in any::<u32>(), virt in 0u64..100_000_000) {
        use netz::Message;
        let cases = vec![
            Message::RpcRequest { request_id, body: fabric::Payload::bytes_scaled(bytes::Bytes::new(), virt) },
            Message::ChunkFetchRequest { stream_id: stream, chunk_index: chunk },
            Message::ChunkFetchSuccess { stream_id: stream, chunk_index: chunk, body: fabric::Payload::bytes_scaled(bytes::Bytes::new(), virt) },
            Message::StreamResponse { stream_id: format!("s{stream}"), byte_count: virt, body: fabric::Payload::bytes_scaled(bytes::Bytes::new(), virt) },
        ];
        for msg in cases {
            let header = msg.encode_header();
            let body = msg.body().cloned().unwrap_or_else(fabric::Payload::empty);
            let back = Message::decode(&header, body).unwrap();
            prop_assert_eq!(header.clone(), back.encode_header());
            prop_assert_eq!(Message::peek_body_len(&header).unwrap(), msg.body_virtual_len());
        }
    }

    #[test]
    fn virtual_clock_is_monotone(delays in proptest::collection::vec(0u64..10_000, 1..40)) {
        let sim = simt::Sim::new();
        let delays2 = delays.clone();
        sim.spawn("t", move || {
            let mut last = simt::now();
            for d in delays2 {
                simt::sleep(d);
                let now = simt::now();
                assert!(now >= last);
                last = now;
            }
        });
        let expected: u64 = delays.iter().sum();
        prop_assert_eq!(sim.run().unwrap().now, expected);
    }
}

// Cluster-backed properties use fewer cases — each runs a full simulated
// Spark cluster.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn shuffle_preserves_multisets(records in proptest::collection::vec((0u64..50, any::<u64>()), 1..300), parts in 1usize..12) {
        use sparklet::deploy::{simulate, ClusterConfig, ProcessBuilderLauncher};
        let spec = fabric::ClusterSpec::test(4);
        let mut conf = sparklet::SparkConf::default();
        conf.executor_cores = 4;
        conf.cost.task_overhead_ns = 1_000;
        let cluster = ClusterConfig::paper_layout(spec.len(), conf);
        let records2 = records.clone();
        let (mut out, _) = simulate(
            &spec,
            cluster,
            std::sync::Arc::new(sparklet::VanillaBackend::default()),
            std::sync::Arc::new(ProcessBuilderLauncher),
            move |sc| {
                sc.parallelize(records2, 5)
                    .partition_by(std::sync::Arc::new(HashPartitioner::new(parts)))
                    .collect()
            },
        );
        let mut expect = records;
        out.sort_unstable();
        expect.sort_unstable();
        prop_assert_eq!(out, expect);
    }

    #[test]
    fn distributed_groupby_matches_local(records in proptest::collection::vec((0u64..20, 0u64..1000), 1..200)) {
        use sparklet::deploy::{simulate, ClusterConfig, ProcessBuilderLauncher};
        let spec = fabric::ClusterSpec::test(4);
        let mut conf = sparklet::SparkConf::default();
        conf.executor_cores = 4;
        conf.cost.task_overhead_ns = 1_000;
        let cluster = ClusterConfig::paper_layout(spec.len(), conf);
        let records2 = records.clone();
        let (out, _) = simulate(
            &spec,
            cluster,
            std::sync::Arc::new(sparklet::VanillaBackend::default()),
            std::sync::Arc::new(ProcessBuilderLauncher),
            move |sc| sc.parallelize(records2, 4).group_by_key(3).collect(),
        );
        let mut oracle: HashMap<u64, Vec<u64>> = HashMap::new();
        for (k, v) in &records {
            oracle.entry(*k).or_default().push(*v);
        }
        prop_assert_eq!(out.len(), oracle.len());
        for (k, mut vs) in out {
            vs.sort_unstable();
            let mut expect = oracle[&k].clone();
            expect.sort_unstable();
            prop_assert_eq!(vs, expect);
        }
    }
}

// Chaos equivalence uses even fewer cases: each runs a clean cluster to
// measure the shuffle-read window, then a faulted one against it. The body
// lives in a helper so the proptest macro stays within its expansion budget.
fn chaos_equivalence_case(
    records: Vec<(u64, u64)>,
    chaos_seed: u64,
) -> Result<(), proptest::test_runner::TestCaseError> {
    use sparklet::deploy::ClusterConfig;
    use workloads::System;

    let spec = fabric::ClusterSpec::test(5);
    let mut conf = sparklet::SparkConf::default();
    conf.executor_cores = 4;
    conf.cost.task_overhead_ns = 10_000;
    conf.merge_chunks_per_request = false; // per-block chunks → per-block retry
    conf.connect_timeout_ns = simt::time::millis(50);
    conf.request_timeout_ns = simt::time::millis(200);
    conf.fetch_timeout_ns = simt::time::millis(300);
    conf.fetch_max_retries = 8;
    conf.fetch_retry_base_ns = simt::time::millis(20);
    conf.fetch_retry_max_ns = simt::time::millis(200);

    let records2 = records.clone();
    let app = move |sc: &sparklet::scheduler::SparkContext| {
        let mut groups = sc.parallelize(records2.clone(), 9).group_by_key(9).collect();
        groups.sort_by_key(|(k, _)| *k);
        groups.iter_mut().for_each(|(_, v)| v.sort_unstable());
        groups
    };

    let clean =
        System::Vanilla.run(&spec, ClusterConfig::paper_layout(spec.len(), conf), app.clone());
    let stage = clean
        .jobs
        .iter()
        .flat_map(|j| j.stages.iter())
        .find(|s| s.name == "Job0-ResultStage")
        .expect("groupby has a result stage");
    let (start, dur) = (stage.start_ns, (stage.end_ns - stage.start_ns).max(1_000));

    // Flap every worker↔worker link across the measured shuffle-read
    // window (workers are nodes 0-2 under the paper layout).
    let mut plan = fabric::FaultPlan::seeded(chaos_seed);
    for (a, b) in [(0, 1), (0, 2), (1, 2)] {
        plan = plan.flap_link(a, b, start, (dur / 3).max(8), (dur / 6).max(2), 6);
    }
    let faulted = System::Vanilla.run_with_chaos(
        &spec,
        ClusterConfig::paper_layout(spec.len(), conf),
        plan.build(),
        app,
    );
    prop_assert_eq!(faulted.result, clean.result);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    // A fetch completed *through retries* decodes byte-identically to a
    // fault-free run: a mid-shuffle drop window changes timing, retry
    // counts, and message fates — never the collected data.
    #[test]
    fn retried_fetches_decode_identically_to_fault_free_runs(records in proptest::collection::vec((0u64..20, any::<u64>()), 50..200), chaos_seed in any::<u64>()) {
        chaos_equivalence_case(records, chaos_seed)?;
    }
}
