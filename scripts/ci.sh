#!/usr/bin/env bash
# Tier-1 gate (ROADMAP.md): build, tests, formatting, lints.
# Usage: scripts/ci.sh [extra cargo args...]
# Offline environments can route every invocation through a wrapper by
# setting CARGO (e.g. CARGO=/tmp/cargo-shimmed.sh scripts/ci.sh).
set -euo pipefail
cd "$(dirname "$0")/.."

CARGO="${CARGO:-cargo}"

echo "==> cargo build --release"
"$CARGO" build --release --workspace "$@"

echo "==> cargo test -q"
"$CARGO" test -q --workspace "$@"

echo "==> cargo fmt --check"
"$CARGO" fmt --all -- --check

echo "==> cargo clippy -- -D warnings"
"$CARGO" clippy --workspace --all-targets "$@" -- -D warnings

echo "CI gate passed."
