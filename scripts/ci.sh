#!/usr/bin/env bash
# Tier-1 gate (ROADMAP.md): build, tests, formatting, lints.
# Usage: scripts/ci.sh [extra cargo args...]
# Offline environments can route every invocation through a wrapper by
# setting CARGO (e.g. CARGO=/tmp/cargo-shimmed.sh scripts/ci.sh).
set -euo pipefail
cd "$(dirname "$0")/.."

CARGO="${CARGO:-cargo}"

echo "==> cargo build --release"
"$CARGO" build --release --workspace "$@"

echo "==> cargo test -q"
"$CARGO" test -q --workspace "$@"

echo "==> chaos matrix (fixed seeds)"
"$CARGO" test -q -p sparklet --test chaos_tests "$@"

# Recovery matrix: executor crash during map / during reduce fetch and a
# slowdown-induced speculation cell on all four backends, plus the
# byte-identical same-seed recovery timeline check.
echo "==> recovery matrix (stage resubmission + speculation)"
"$CARGO" test -q -p sparklet --test recovery_chaos_tests "$@"

# AQE matrix: adaptive plans (coalesce / split / two-phase aggregation)
# must be oracle-equivalent to static execution on all four backends,
# including under a crash-during-fetch replan, and the planner proptests
# must hold.
echo "==> AQE matrix (adaptive vs static oracle + planner proptests)"
"$CARGO" test -q -p sparklet --test aqe_tests "$@"

# Partial-result matrix: approximate actions with never-firing deadlines
# must equal the exact actions on all four backends, a mid-recovery
# deadline must yield a deterministic interval that brackets the truth,
# and the disabled subsystem must be bit-identical to the exact engine.
echo "==> partial matrix (JobHandle + approximate actions)"
"$CARGO" test -q -p sparklet --test partial_tests "$@"

# Randomized-seed smoke: every run exercises a fresh fault schedule. The
# seed is printed up front — replaying a failure is
# `CHAOS_SEED=<seed> scripts/ci.sh` (the whole run is a pure function of
# the seed).
#
# Seed derivation must be portable: $RANDOM is a bash/zsh-ism that silently
# expands to an empty string under dash/posh, which used to yield
# CHAOS_SEED="" and an arithmetic error (or, worse, seed 0 every run).
derive_seed() {
  seed="$(od -vAn -N6 -tu8 /dev/urandom 2>/dev/null | tr -d '[:space:]')"
  if [ -z "$seed" ]; then
    # No usable /dev/urandom (some minimal containers): fall back to the
    # clock. Coarse, but still a fresh schedule per run.
    seed="$(date +%s%N 2>/dev/null | tr -cd '0-9')"
  fi
  printf '%s' "$seed"
}
if [ -z "${CHAOS_SEED:-}" ]; then
  CHAOS_SEED="$(derive_seed)"
fi
if [ -z "$CHAOS_SEED" ]; then
  echo "error: could not derive CHAOS_SEED (no /dev/urandom, no date); set it explicitly" >&2
  exit 1
fi
echo "==> chaos smoke (randomized seed: CHAOS_SEED=$CHAOS_SEED)"
CHAOS_SEED="$CHAOS_SEED" "$CARGO" test -q --release -p sparklet --test chaos_tests "$@" -- --ignored

# Traced smoke: one small cell with the timeline exporter on, run twice.
# The binary validates the JSON in-process; the `cmp` pins the exporter's
# byte-stability guarantee (same program ⇒ identical trace bytes).
echo "==> traced smoke (timeline export, double run + byte compare)"
TRACE_TMP="${TMPDIR:-/tmp}/mpi4spark-trace-$$"
rm -rf "$TRACE_TMP"
SPARK_TRACE_DIR="$TRACE_TMP/a" "$CARGO" run -q --release -p mpi4spark-bench --bin traced_smoke "$@"
SPARK_TRACE_DIR="$TRACE_TMP/b" "$CARGO" run -q --release -p mpi4spark-bench --bin traced_smoke "$@"
cmp "$TRACE_TMP/a/GroupByTest-MPI-2w.json" "$TRACE_TMP/b/GroupByTest-MPI-2w.json" || {
  echo "error: timeline export is not byte-stable across identical runs" >&2
  exit 1
}
rm -rf "$TRACE_TMP"

# Fan-in smoke: the body-completion ablation at small scale. The binary
# asserts the request-based batched path is never slower than the legacy
# blocking event loop (clean fabric) and strictly faster when an
# MPI-plane drop window lands mid-shuffle.
echo "==> fan-in smoke (body-completion ablation, small scale)"
"$CARGO" run -q --release -p mpi4spark-bench --bin ablation_fanin "$@" -- --scale small

# Recovery smoke: the recovery-overhead bench at small scale. The binary
# asserts speculation is free on a fault-free run, that the crash cells
# recover through speculation / stage resubmission, and that speculation
# measurably cuts the slowdown cell's virtual job time.
echo "==> recovery smoke (crash + slowdown cells, small scale)"
"$CARGO" run -q --release -p mpi4spark-bench --bin bench_recovery "$@" -- --scale small

# AQE smoke: the zipfian-GroupBy skew bench at small scale. The binary
# asserts AQE-off cells never plan, adaptive cells split the hot bucket,
# results match the static oracle on every backend, and the MPI cell's
# GroupBy job improves at least 2x.
echo "==> AQE smoke (zipfian GroupBy, static vs adaptive, small scale)"
"$CARGO" run -q --release -p mpi4spark-bench --bin bench_aqe "$@" -- --scale small

# Partial smoke: the deadline sweep on a straggler fabric at small scale.
# The binary asserts unbounded runs count exactly, budgets bound the job's
# virtual time, coverage grows with the budget, intervals with >= 2 folded
# partitions bracket the true group count, and a same-seed bounded re-run
# is byte-identical.
echo "==> partial smoke (deadline sweep on straggler fabric, small scale)"
"$CARGO" run -q --release -p mpi4spark-bench --bin bench_partial "$@" -- --scale small

echo "==> detlint (determinism D1-D6, lock-order L1, protocol P1-P3)"
"$CARGO" run -q --release -p detlint

# detlint throughput bench: times the two-pass workspace analysis on this
# tree and re-checks cleanliness; writes BENCH_detlint.json at the root.
echo "==> detlint throughput bench (writes BENCH_detlint.json)"
"$CARGO" run -q --release -p mpi4spark-bench --bin bench_detlint "$@"

echo "==> cargo fmt --check"
"$CARGO" fmt --all -- --check

echo "==> cargo clippy -- -D warnings"
"$CARGO" clippy --workspace --all-targets "$@" -- -D warnings

echo "CI gate passed."
