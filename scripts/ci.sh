#!/usr/bin/env bash
# Tier-1 gate (ROADMAP.md): build, tests, formatting, lints.
# Usage: scripts/ci.sh [extra cargo args...]
# Offline environments can route every invocation through a wrapper by
# setting CARGO (e.g. CARGO=/tmp/cargo-shimmed.sh scripts/ci.sh).
set -euo pipefail
cd "$(dirname "$0")/.."

CARGO="${CARGO:-cargo}"

echo "==> cargo build --release"
"$CARGO" build --release --workspace "$@"

echo "==> cargo test -q"
"$CARGO" test -q --workspace "$@"

echo "==> chaos matrix (fixed seeds)"
"$CARGO" test -q -p sparklet --test chaos_tests "$@"

# Randomized-seed smoke: every run exercises a fresh fault schedule. The
# seed is printed up front — replaying a failure is
# `CHAOS_SEED=<seed> scripts/ci.sh` (the whole run is a pure function of
# the seed).
CHAOS_SEED="${CHAOS_SEED:-$(( (RANDOM << 30) ^ (RANDOM << 15) ^ RANDOM ))}"
echo "==> chaos smoke (randomized seed: CHAOS_SEED=$CHAOS_SEED)"
CHAOS_SEED="$CHAOS_SEED" "$CARGO" test -q --release -p sparklet --test chaos_tests "$@" -- --ignored

echo "==> cargo fmt --check"
"$CARGO" fmt --all -- --check

echo "==> cargo clippy -- -D warnings"
"$CARGO" clippy --workspace --all-targets "$@" -- -D warnings

echo "CI gate passed."
